package navigate

import (
	"testing"

	"bionav/internal/core"
	"bionav/internal/corpus"
	"bionav/internal/navtree"
	"bionav/internal/rng"
)

// TestRandomActionSequences is a model-based test: it drives sessions with
// long random sequences of user actions (EXPAND on random visible nodes,
// SHOWRESULTS, IGNORE, BACKTRACK) under every policy and checks, after
// every step, the active-tree invariants plus a shadow cost model.
func TestRandomActionSequences(t *testing.T) {
	nav := buildNav(t, 301, 150, 30)
	policies := []core.Policy{
		core.NewHeuristicReducedOpt(),
		core.StaticAll{},
		core.StaticTopK{K: 5},
	}
	src := rng.New(99)
	for _, pol := range policies {
		t.Run(pol.Name(), func(t *testing.T) {
			s := NewSession(nav, pol)
			var shadow Cost
			expandDepth := 0 // net EXPANDs minus BACKTRACKs
			for step := 0; step < 120; step++ {
				roots := s.Active().VisibleRoots()
				switch src.Intn(10) {
				case 0, 1, 2, 3, 4, 5: // EXPAND a random expandable component
					var cands []navtree.NodeID
					for _, r := range roots {
						if s.Active().ComponentSize(r) > 1 {
							cands = append(cands, r)
						}
					}
					if len(cands) == 0 {
						continue
					}
					node := cands[src.Intn(len(cands))]
					revealed, err := s.Expand(node)
					if err != nil {
						t.Fatalf("step %d: EXPAND(%d): %v", step, node, err)
					}
					shadow.Expands++
					shadow.ConceptsRevealed += len(revealed)
					expandDepth++
					for _, r := range revealed {
						if !s.Active().IsVisible(r) {
							t.Fatalf("step %d: revealed %d not visible", step, r)
						}
					}
				case 6, 7: // SHOWRESULTS on a random visible node
					node := roots[src.Intn(len(roots))]
					cits, err := s.ShowResults(node)
					if err != nil {
						t.Fatalf("step %d: SHOWRESULTS(%d): %v", step, node, err)
					}
					shadow.CitationsListed += len(cits)
					// The listing equals the distinct count on display.
					if len(cits) != s.Active().Distinct(node) {
						t.Fatalf("step %d: listed %d, component shows %d",
							step, len(cits), s.Active().Distinct(node))
					}
				case 8: // IGNORE
					node := roots[src.Intn(len(roots))]
					if err := s.Ignore(node); err != nil {
						t.Fatalf("step %d: IGNORE(%d): %v", step, node, err)
					}
				case 9: // BACKTRACK
					if expandDepth == 0 {
						if err := s.Backtrack(); err == nil {
							t.Fatalf("step %d: backtrack succeeded with empty history", step)
						}
						continue
					}
					if err := s.Backtrack(); err != nil {
						t.Fatalf("step %d: BACKTRACK: %v", step, err)
					}
					expandDepth--
				}
				if err := s.Active().CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if s.Cost() != shadow {
					t.Fatalf("step %d: cost %+v diverged from shadow %+v", step, s.Cost(), shadow)
				}
			}
			// The log replays to the same cost.
			var replay Cost
			for _, a := range s.Log() {
				switch a.Kind {
				case ActionExpand:
					replay.Expands++
					replay.ConceptsRevealed += len(a.Revealed)
				case ActionShowResults:
					replay.CitationsListed += a.Listed
				}
			}
			if replay != s.Cost() {
				t.Fatalf("log replay %+v != cost %+v", replay, s.Cost())
			}
		})
	}
}

// TestVisibleCountsAlwaysConsistent checks Definition 5 under random
// expansion: every visible node's count equals the distinct citations of
// its component, the root's initial count equals the result size, and the
// union of visible leaf components covers the whole result.
func TestVisibleCountsAlwaysConsistent(t *testing.T) {
	nav := buildNav(t, 302, 120, 25)
	s := NewSession(nav, core.NewHeuristicReducedOpt())
	src := rng.New(17)
	for step := 0; step < 25; step++ {
		vis := s.Visualize()
		total := make(map[corpus.CitationID]struct{})
		for id, v := range vis {
			if v.Count != s.Active().Distinct(id) {
				t.Fatalf("step %d: node %d count %d != distinct %d", step, id, v.Count, s.Active().Distinct(id))
			}
			for _, m := range s.Active().Members(id) {
				for _, c := range nav.Results(m) {
					total[c] = struct{}{}
				}
			}
		}
		if len(total) != nav.DistinctTotal() {
			t.Fatalf("step %d: visible components cover %d of %d citations",
				step, len(total), nav.DistinctTotal())
		}
		// Expand something if possible.
		var cands []navtree.NodeID
		for id := range vis {
			if s.Active().ComponentSize(id) > 1 {
				cands = append(cands, id)
			}
		}
		if len(cands) == 0 {
			break
		}
		if _, err := s.Expand(cands[src.Intn(len(cands))]); err != nil {
			t.Fatal(err)
		}
	}
}
