package store

import (
	"errors"
	"testing"

	"bionav/internal/faults"
)

// TestFaultLoadDatasetInjected: an armed SiteStoreLoad failpoint makes
// LoadDataset fail cleanly before touching the directory, and loading
// works again once the fault is disarmed — the startup path a server
// retry loop depends on.
func TestFaultLoadDatasetInjected(t *testing.T) {
	t.Cleanup(faults.Reset)
	ds := testDatasetSized(t, 120, 60)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}

	faults.Arm(faults.SiteStoreLoad, faults.Always(), nil)
	if _, err := LoadDataset(dir); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}

	faults.Disarm(faults.SiteStoreLoad)
	got, err := LoadDataset(dir)
	if err != nil {
		t.Fatalf("Load after disarm: %v", err)
	}
	if got.Tree.Len() != ds.Tree.Len() || got.Corpus.Len() != ds.Corpus.Len() {
		t.Fatal("dataset loaded after disarm differs from the saved one")
	}
}

// TestFaultLoadDatasetWrappedError: a custom injected error (e.g. a
// simulated I/O failure) flows through LoadDataset's error wrapping so
// callers can still errors.Is against the root cause.
func TestFaultLoadDatasetWrappedError(t *testing.T) {
	t.Cleanup(faults.Reset)
	sentinel := errors.New("disk on fire")
	faults.Arm(faults.SiteStoreLoad, faults.Always(), faults.ErrAction(sentinel))
	if _, err := LoadDataset(t.TempDir()); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}
