package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"bionav/internal/corpus"
)

// CitationReader serves point lookups of citations straight from the
// database files, without materializing the corpus in memory — the serving
// role the paper's Oracle database plays for SHOWRESULTS/ESummary against
// 18M-citation MEDLINE. Opening scans the citation table (and, when
// present, the ingest log) once to build an in-memory (ID → file location)
// index; Get then costs one ReadAt plus decode, front-ended by a small
// LRU cache.
//
// Frames index in storage order — base citations table first, then the
// ingest log's batches — and a later frame for an already-seen citation
// ID replaces the earlier one's location: **duplicate frames last-win**.
// That is the documented upsert semantic the ingest append path relies
// on: re-ingesting a citation ID supersedes the stored record without
// rewriting the base table, and a reader opened afterwards serves the
// newest version. Torn tails (crash artifacts mid-append) end the scan
// and are counted by bionav_store_torn_tails_total.
//
// CitationReader is safe for concurrent use. The location index is fixed
// at open: batches ingested later are served only by a reader reopened
// after them.
type CitationReader struct {
	f       *os.File
	ing     *os.File // ingest log; nil when the directory has none
	offsets map[corpus.CitationID]recordLoc

	mu    sync.Mutex
	cache *lru
}

type recordLoc struct {
	offset int64
	length uint32
	crc    uint32
	ing    bool // location is in the ingest log, not the citations table
}

// OpenCitationReader indexes dir's citation table plus its ingest log.
// cacheSize bounds the decoded-citation LRU (0 disables caching).
func OpenCitationReader(dir string, cacheSize int) (*CitationReader, error) {
	path := filepath.Join(dir, tableCitations+tableSuffix)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open citations: %w", err)
	}
	r := &CitationReader{
		f:       f,
		offsets: make(map[corpus.CitationID]recordLoc),
		cache:   newLRU(cacheSize),
	}
	if err := r.buildIndex(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// buildIndex scans record frames, decoding only the leading citation-ID
// varint of each payload. CRCs are stored and verified lazily on Get, so
// the scan is one sequential pass reading 8+10 bytes per record.
func (r *CitationReader) buildIndex() error {
	var magic [4]byte
	if _, err := io.ReadFull(r.f, magic[:]); err != nil || magic != tableMagic {
		return fmt.Errorf("%w: citations table: bad magic", ErrCorrupt)
	}
	fi, err := r.f.Stat()
	if err != nil {
		return fmt.Errorf("store: index citations: %w", err)
	}
	size := fi.Size()
	offset := int64(len(magic))
	var hdr [8]byte
	var lead [binary.MaxVarintLen64]byte
	for offset < size {
		if size-offset < 8 {
			storeTornTails.Inc() // partial header at the tail
			break
		}
		if _, err := r.f.ReadAt(hdr[:], offset); err != nil {
			return fmt.Errorf("store: index citations: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordSize {
			return fmt.Errorf("%w: citations table: record claims %d bytes", ErrCorrupt, length)
		}
		if offset+8+int64(length) > size {
			storeTornTails.Inc() // record torn mid-payload
			break
		}
		n := int(length)
		if n > len(lead) {
			n = len(lead)
		}
		if _, err := r.f.ReadAt(lead[:n], offset+8); err != nil {
			return fmt.Errorf("store: index citations: %w", err)
		}
		id, vn := binary.Varint(lead[:n])
		if vn <= 0 {
			return fmt.Errorf("%w: citations table: record at %d has no ID", ErrCorrupt, offset)
		}
		// Duplicate IDs last-win (upsert): a later frame supersedes.
		r.offsets[corpus.CitationID(id)] = recordLoc{offset: offset + 8, length: length, crc: crc}
		offset += 8 + int64(length)
	}
	return r.indexIngestLog(filepath.Dir(r.f.Name()))
}

// indexIngestLog overlays the ingest log's citations onto the offset
// index, so point lookups serve the ingested (and upserted) records. Each
// log frame is one batch: a citation count followed by length-prefixed
// sub-records. The frame CRC is verified during the scan; per-citation
// CRCs are computed here and re-verified lazily on Get like base records.
func (r *CitationReader) indexIngestLog(dir string) error {
	path := filepath.Join(dir, tableIngest+tableSuffix)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: open ingest log: %w", err)
	}
	r.ing = f
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil // freshly created, magic not yet flushed: no batches
		}
		return fmt.Errorf("store: index ingest log: %w", err)
	}
	if magic != tableMagic {
		return fmt.Errorf("%w: ingest log: bad magic", ErrCorrupt)
	}
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: index ingest log: %w", err)
	}
	size := fi.Size()
	offset := int64(len(magic))
	var hdr [8]byte
	var buf []byte
	for offset < size {
		if size-offset < 8 {
			storeTornTails.Inc()
			break
		}
		if _, err := f.ReadAt(hdr[:], offset); err != nil {
			return fmt.Errorf("store: index ingest log: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordSize {
			return fmt.Errorf("%w: ingest log: record claims %d bytes", ErrCorrupt, length)
		}
		if offset+8+int64(length) > size {
			storeTornTails.Inc()
			break
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := f.ReadAt(buf, offset+8); err != nil {
			return fmt.Errorf("store: index ingest log: %w", err)
		}
		if got := crc32.Checksum(buf, castagnoli); got != want {
			if offset+8+int64(length) == size {
				storeTornTails.Inc() // torn final frame
				break
			}
			return fmt.Errorf("%w: ingest log: frame at %d checksum %08x != %08x", ErrCorrupt, offset, got, want)
		}
		if err := r.indexBatchFrame(buf, offset+8); err != nil {
			return err
		}
		offset += 8 + int64(length)
	}
	return nil
}

// indexBatchFrame walks one CRC-verified batch payload, registering each
// sub-record's absolute location. payloadOff is the payload's offset in
// the ingest log file.
func (r *CitationReader) indexBatchFrame(payload []byte, payloadOff int64) error {
	pos := 0
	cnt, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("%w: ingest log: batch frame has no count", ErrCorrupt)
	}
	pos += n
	for i := uint64(0); i < cnt; i++ {
		slen, n := binary.Uvarint(payload[pos:])
		if n <= 0 || uint64(len(payload)-pos-n) < slen {
			return fmt.Errorf("%w: ingest log: batch frame truncated", ErrCorrupt)
		}
		pos += n
		rec := payload[pos : pos+int(slen)]
		id, vn := binary.Varint(rec)
		if vn <= 0 {
			return fmt.Errorf("%w: ingest log: batch citation has no ID", ErrCorrupt)
		}
		r.offsets[corpus.CitationID(id)] = recordLoc{
			offset: payloadOff + int64(pos),
			length: uint32(slen),
			crc:    crc32.Checksum(rec, castagnoli),
			ing:    true,
		}
		pos += int(slen)
	}
	return nil
}

// Len reports the number of indexed citations.
func (r *CitationReader) Len() int { return len(r.offsets) }

// Has reports whether the citation exists without reading it.
func (r *CitationReader) Has(id corpus.CitationID) bool {
	_, ok := r.offsets[id]
	return ok
}

// Get reads, verifies, and decodes one citation. The result is shared with
// the cache and must not be modified.
func (r *CitationReader) Get(id corpus.CitationID) (*corpus.Citation, error) {
	loc, ok := r.offsets[id]
	if !ok {
		return nil, fmt.Errorf("store: citation %d not found", id)
	}
	r.mu.Lock()
	if c, hit := r.cache.get(id); hit {
		r.mu.Unlock()
		citationCacheHits.Inc()
		return c, nil
	}
	r.mu.Unlock()
	citationCacheMisses.Inc()

	src := r.f
	if loc.ing {
		src = r.ing
	}
	buf := make([]byte, loc.length)
	if _, err := src.ReadAt(buf, loc.offset); err != nil {
		return nil, fmt.Errorf("store: read citation %d: %w", id, err)
	}
	if got := crc32.Checksum(buf, castagnoli); got != loc.crc {
		return nil, fmt.Errorf("%w: citation %d checksum %08x != %08x", ErrCorrupt, id, got, loc.crc)
	}
	c, err := decodeCitation(buf)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache.put(id, &c)
	r.mu.Unlock()
	return &c, nil
}

// Close releases the file descriptors.
func (r *CitationReader) Close() error {
	err := r.f.Close()
	if r.ing != nil {
		if cerr := r.ing.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// lru is a minimal LRU cache of decoded citations. Not safe for concurrent
// use; the reader serializes access.
type lru struct {
	max   int
	order *list.List // front = most recent; values are *lruEntry
	items map[corpus.CitationID]*list.Element
}

type lruEntry struct {
	id corpus.CitationID
	c  *corpus.Citation
}

func newLRU(max int) *lru {
	return &lru{max: max, order: list.New(), items: make(map[corpus.CitationID]*list.Element)}
}

func (l *lru) get(id corpus.CitationID) (*corpus.Citation, bool) {
	el, ok := l.items[id]
	if !ok {
		return nil, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).c, true
}

func (l *lru) put(id corpus.CitationID, c *corpus.Citation) {
	if l.max <= 0 {
		return
	}
	if el, ok := l.items[id]; ok {
		l.order.MoveToFront(el)
		el.Value.(*lruEntry).c = c
		return
	}
	l.items[id] = l.order.PushFront(&lruEntry{id: id, c: c})
	for l.order.Len() > l.max {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.items, oldest.Value.(*lruEntry).id)
	}
}
