package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"bionav/internal/corpus"
)

// CitationReader serves point lookups of citations straight from the
// database file, without materializing the corpus in memory — the serving
// role the paper's Oracle database plays for SHOWRESULTS/ESummary against
// 18M-citation MEDLINE. Opening scans the citation table once to build an
// in-memory (ID → file location) index (16 bytes per citation); Get then
// costs one ReadAt plus decode, front-ended by a small LRU cache.
//
// CitationReader is safe for concurrent use.
type CitationReader struct {
	f       *os.File
	offsets map[corpus.CitationID]recordLoc

	mu    sync.Mutex
	cache *lru
}

type recordLoc struct {
	offset int64
	length uint32
	crc    uint32
}

// OpenCitationReader indexes dir's citation table. cacheSize bounds the
// decoded-citation LRU (0 disables caching).
func OpenCitationReader(dir string, cacheSize int) (*CitationReader, error) {
	path := filepath.Join(dir, tableCitations+tableSuffix)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open citations: %w", err)
	}
	r := &CitationReader{
		f:       f,
		offsets: make(map[corpus.CitationID]recordLoc),
		cache:   newLRU(cacheSize),
	}
	if err := r.buildIndex(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// buildIndex scans record frames, decoding only the leading citation-ID
// varint of each payload. CRCs are stored and verified lazily on Get, so
// the scan is one sequential pass reading 8+10 bytes per record.
func (r *CitationReader) buildIndex() error {
	var magic [4]byte
	if _, err := io.ReadFull(r.f, magic[:]); err != nil || magic != tableMagic {
		return fmt.Errorf("%w: citations table: bad magic", ErrCorrupt)
	}
	offset := int64(len(magic))
	var hdr [8]byte
	var lead [binary.MaxVarintLen64]byte
	for {
		if _, err := r.f.ReadAt(hdr[:], offset); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // clean end or torn tail
			}
			return fmt.Errorf("store: index citations: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordSize {
			return fmt.Errorf("%w: citations table: record claims %d bytes", ErrCorrupt, length)
		}
		n := int(length)
		if n > len(lead) {
			n = len(lead)
		}
		if _, err := r.f.ReadAt(lead[:n], offset+8); err != nil {
			return nil // torn tail
		}
		id, vn := binary.Varint(lead[:n])
		if vn <= 0 {
			return fmt.Errorf("%w: citations table: record at %d has no ID", ErrCorrupt, offset)
		}
		r.offsets[corpus.CitationID(id)] = recordLoc{offset: offset + 8, length: length, crc: crc}
		offset += 8 + int64(length)
	}
}

// Len reports the number of indexed citations.
func (r *CitationReader) Len() int { return len(r.offsets) }

// Has reports whether the citation exists without reading it.
func (r *CitationReader) Has(id corpus.CitationID) bool {
	_, ok := r.offsets[id]
	return ok
}

// Get reads, verifies, and decodes one citation. The result is shared with
// the cache and must not be modified.
func (r *CitationReader) Get(id corpus.CitationID) (*corpus.Citation, error) {
	loc, ok := r.offsets[id]
	if !ok {
		return nil, fmt.Errorf("store: citation %d not found", id)
	}
	r.mu.Lock()
	if c, hit := r.cache.get(id); hit {
		r.mu.Unlock()
		citationCacheHits.Inc()
		return c, nil
	}
	r.mu.Unlock()
	citationCacheMisses.Inc()

	buf := make([]byte, loc.length)
	if _, err := r.f.ReadAt(buf, loc.offset); err != nil {
		return nil, fmt.Errorf("store: read citation %d: %w", id, err)
	}
	if got := crc32.Checksum(buf, castagnoli); got != loc.crc {
		return nil, fmt.Errorf("%w: citation %d checksum %08x != %08x", ErrCorrupt, id, got, loc.crc)
	}
	c, err := decodeCitation(buf)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache.put(id, &c)
	r.mu.Unlock()
	return &c, nil
}

// Close releases the file descriptor.
func (r *CitationReader) Close() error { return r.f.Close() }

// lru is a minimal LRU cache of decoded citations. Not safe for concurrent
// use; the reader serializes access.
type lru struct {
	max   int
	order *list.List // front = most recent; values are *lruEntry
	items map[corpus.CitationID]*list.Element
}

type lruEntry struct {
	id corpus.CitationID
	c  *corpus.Citation
}

func newLRU(max int) *lru {
	return &lru{max: max, order: list.New(), items: make(map[corpus.CitationID]*list.Element)}
}

func (l *lru) get(id corpus.CitationID) (*corpus.Citation, bool) {
	el, ok := l.items[id]
	if !ok {
		return nil, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).c, true
}

func (l *lru) put(id corpus.CitationID, c *corpus.Citation) {
	if l.max <= 0 {
		return
	}
	if el, ok := l.items[id]; ok {
		l.order.MoveToFront(el)
		el.Value.(*lruEntry).c = c
		return
	}
	l.items[id] = l.order.PushFront(&lruEntry{id: id, c: c})
	for l.order.Len() > l.max {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.items, oldest.Value.(*lruEntry).id)
	}
}
