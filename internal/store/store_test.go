package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.PutUvarint(0)
	e.PutUvarint(1 << 60)
	e.PutVarint(-42)
	e.PutVarint(1 << 50)
	e.PutString("hello, 世界")
	e.PutBytes([]byte{0, 1, 2, 255})
	e.PutFloat64(3.14159)

	d := NewDecoder(e.Bytes())
	if v, err := d.Uvarint(); err != nil || v != 0 {
		t.Fatalf("uvarint: %v %v", v, err)
	}
	if v, err := d.Uvarint(); err != nil || v != 1<<60 {
		t.Fatalf("uvarint: %v %v", v, err)
	}
	if v, err := d.Varint(); err != nil || v != -42 {
		t.Fatalf("varint: %v %v", v, err)
	}
	if v, err := d.Varint(); err != nil || v != 1<<50 {
		t.Fatalf("varint: %v %v", v, err)
	}
	if v, err := d.String(); err != nil || v != "hello, 世界" {
		t.Fatalf("string: %q %v", v, err)
	}
	if v, err := d.Bytes(); err != nil || !bytes.Equal(v, []byte{0, 1, 2, 255}) {
		t.Fatalf("bytes: %v %v", v, err)
	}
	if v, err := d.Float64(); err != nil || v != 3.14159 {
		t.Fatalf("float: %v %v", v, err)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

func TestCodecQuickRoundTrip(t *testing.T) {
	err := quick.Check(func(u uint64, i int64, s string, b []byte, f float64) bool {
		var e Encoder
		e.PutUvarint(u)
		e.PutVarint(i)
		e.PutString(s)
		e.PutBytes(b)
		e.PutFloat64(f)
		d := NewDecoder(e.Bytes())
		gu, err1 := d.Uvarint()
		gi, err2 := d.Varint()
		gs, err3 := d.String()
		gb, err4 := d.Bytes()
		gf, err5 := d.Float64()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			return false
		}
		if d.Finish() != nil {
			return false
		}
		// NaN compares unequal to itself; compare bit patterns via encode.
		sameFloat := gf == f || (f != f && gf != gf)
		return gu == u && gi == i && gs == s && bytes.Equal(gb, b) && sameFloat
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecoderErrorsOnTruncation(t *testing.T) {
	var e Encoder
	e.PutString("abcdef")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		if _, err := d.String(); err == nil {
			t.Fatalf("cut=%d: no error", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}

func TestDecoderFinishDetectsTrailing(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	if err := d.Finish(); err == nil {
		t.Fatal("Finish ignored trailing bytes")
	}
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tbl")
	w, err := CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), {}, []byte("gamma with a longer payload")}
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 3 {
		t.Fatalf("Records = %d", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	err = ReadLog(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: %q != %q", i, got[i], want[i])
		}
	}
}

func TestLogTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tbl")
	w, err := CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte("record-payload-0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate at every possible byte boundary inside the last record; the
	// reader must always recover the first four records and never error.
	recSize := (len(full) - 4) / 5
	for cut := len(full) - recSize + 1; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := ReadLog(path, func([]byte) error { n++; return nil }); err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if n != 4 {
			t.Fatalf("cut=%d: recovered %d records, want 4", cut, n)
		}
	}
}

func TestLogMidFileCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tbl")
	w, err := CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(bytes.Repeat([]byte{byte(i + 1)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first record (after magic + header).
	data[4+8+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = ReadLog(path, func([]byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestLogBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tbl")
	if err := os.WriteFile(path, []byte("XXXXjunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadLog(path, func([]byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDBTables(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zeta", "alpha"} {
		tw, err := w.CreateTable(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := tw.Append([]byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.CreateTable("alpha"); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := w.CreateTable("Bad Name"); err == nil {
		t.Fatal("invalid table name accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := db.Tables()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Tables = %v", got)
	}
	if !db.HasTable("alpha") || db.HasTable("nope") {
		t.Fatal("HasTable wrong")
	}
	var payloads []string
	err = db.ForEach("alpha", func(p []byte) error {
		payloads = append(payloads, string(p))
		return nil
	})
	if err != nil || len(payloads) != 1 || payloads[0] != "alpha" {
		t.Fatalf("ForEach = %v, %v", payloads, err)
	}
	if err := db.ForEach("nope", func([]byte) error { return nil }); err == nil {
		t.Fatal("ForEach on missing table succeeded")
	}
}

func TestNewWriterCleansStaleTables(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "old.tbl")
	if err := os.WriteFile(stale, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWriter(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale table not removed")
	}
}
