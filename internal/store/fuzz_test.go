package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecoder throws arbitrary bytes at the record codec: every accessor
// must either succeed or fail with ErrCorrupt — never panic or loop.
func FuzzDecoder(f *testing.F) {
	var e Encoder
	e.PutUvarint(7)
	e.PutVarint(-3)
	e.PutString("seed")
	e.PutBytes([]byte{1, 2})
	e.PutFloat64(1.5)
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for {
			switch len(data) % 5 {
			case 0:
				if _, err := d.Uvarint(); err != nil {
					requireCorrupt(t, err)
					return
				}
			case 1:
				if _, err := d.Varint(); err != nil {
					requireCorrupt(t, err)
					return
				}
			case 2:
				if _, err := d.String(); err != nil {
					requireCorrupt(t, err)
					return
				}
			case 3:
				if _, err := d.Bytes(); err != nil {
					requireCorrupt(t, err)
					return
				}
			case 4:
				if _, err := d.Float64(); err != nil {
					requireCorrupt(t, err)
					return
				}
			}
			if d.Remaining() == 0 {
				return
			}
		}
	})
}

func requireCorrupt(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
}

// FuzzReadLog feeds arbitrary files to the table-log reader: it must never
// panic, and any error must wrap ErrCorrupt (torn tails return nil).
func FuzzReadLog(f *testing.F) {
	// Seed with a valid two-record log.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.tbl")
	w, err := CreateLog(path)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Append([]byte("hello"))
	_ = w.Append(bytes.Repeat([]byte{7}, 100))
	_ = w.Close()
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("BNT1"))
	f.Add([]byte("XXXX"))
	f.Add(valid[:len(valid)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "f.tbl")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ReadLog(p, func([]byte) error { return nil }); err != nil {
			requireCorrupt(t, err)
		}
	})
}
