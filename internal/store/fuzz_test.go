package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bionav/internal/corpus"
	"bionav/internal/hierarchy"
)

// FuzzDecoder throws arbitrary bytes at the record codec: every accessor
// must either succeed or fail with ErrCorrupt — never panic or loop.
func FuzzDecoder(f *testing.F) {
	var e Encoder
	e.PutUvarint(7)
	e.PutVarint(-3)
	e.PutString("seed")
	e.PutBytes([]byte{1, 2})
	e.PutFloat64(1.5)
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for {
			switch len(data) % 5 {
			case 0:
				if _, err := d.Uvarint(); err != nil {
					requireCorrupt(t, err)
					return
				}
			case 1:
				if _, err := d.Varint(); err != nil {
					requireCorrupt(t, err)
					return
				}
			case 2:
				if _, err := d.String(); err != nil {
					requireCorrupt(t, err)
					return
				}
			case 3:
				if _, err := d.Bytes(); err != nil {
					requireCorrupt(t, err)
					return
				}
			case 4:
				if _, err := d.Float64(); err != nil {
					requireCorrupt(t, err)
					return
				}
			}
			if d.Remaining() == 0 {
				return
			}
		}
	})
}

func requireCorrupt(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
}

// FuzzCitationCodec throws arbitrary bytes at the citation record codec.
// Any successful decode must satisfy the strict-ascent concept invariant
// and survive an encode/decode round trip unchanged; any failure must wrap
// ErrCorrupt. The seeds cover the asymmetry this guards against: records
// hand-encoded with unsorted, duplicate, and empty concept lists, which
// the encoder refuses and the decoder must therefore reject too.
func FuzzCitationCodec(f *testing.F) {
	valid := corpus.Citation{
		ID: 12345, Title: "seed citation", Authors: []string{"Ada L", "Grace H"},
		Year: 2008, Terms: []string{"protein", "p53"},
		Concepts: []hierarchy.ConceptID{3, 7, 8, 40},
	}
	var enc Encoder
	if err := encodeCitation(&enc, &valid); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), enc.Bytes()...))

	// rawConcepts encodes a citation header followed by the given concept
	// deltas verbatim — bypassing encodeCitation's validation, the way a
	// pre-fix writer or corrupted disk could.
	rawConcepts := func(deltas ...uint64) []byte {
		var e Encoder
		e.PutVarint(99)
		e.PutString("bad concepts")
		e.PutUvarint(2008)
		e.PutUvarint(0) // authors
		e.PutUvarint(0) // terms
		e.PutUvarint(uint64(len(deltas)))
		for _, d := range deltas {
			e.PutUvarint(d)
		}
		return append([]byte(nil), e.Bytes()...)
	}
	f.Add(rawConcepts())                    // empty concepts: valid
	f.Add(rawConcepts(5, 0))                // duplicate (zero delta)
	f.Add(rawConcepts(0))                   // non-positive first concept
	f.Add(rawConcepts(3, 1<<63))            // overflow wraps descending
	f.Add(enc.Bytes()[:len(enc.Bytes())-2]) // truncated tail

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := decodeCitation(data)
		if err != nil {
			requireCorrupt(t, err)
			return
		}
		if !conceptsStrictlyAscending(c.Concepts) {
			t.Fatalf("decode accepted non-ascending concepts %v", c.Concepts)
		}
		var re Encoder
		if err := encodeCitation(&re, &c); err != nil {
			t.Fatalf("re-encode of a decoded citation failed: %v", err)
		}
		back, err := decodeCitation(re.Bytes())
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if back.ID != c.ID || back.Title != c.Title || back.Year != c.Year ||
			len(back.Authors) != len(c.Authors) || len(back.Terms) != len(c.Terms) ||
			len(back.Concepts) != len(c.Concepts) {
			t.Fatalf("round trip changed the citation: %+v vs %+v", back, c)
		}
		for i := range c.Concepts {
			if back.Concepts[i] != c.Concepts[i] {
				t.Fatalf("round trip changed concept %d", i)
			}
		}
	})
}

// FuzzReadLog feeds arbitrary files to the table-log reader: it must never
// panic, and any error must wrap ErrCorrupt (torn tails return nil).
func FuzzReadLog(f *testing.F) {
	// Seed with a valid two-record log.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.tbl")
	w, err := CreateLog(path)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Append([]byte("hello"))
	_ = w.Append(bytes.Repeat([]byte{7}, 100))
	_ = w.Close()
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("BNT1"))
	f.Add([]byte("XXXX"))
	f.Add(valid[:len(valid)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "f.tbl")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ReadLog(p, func([]byte) error { return nil }); err != nil {
			requireCorrupt(t, err)
		}
	})
}
