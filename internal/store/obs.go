package store

import "bionav/internal/obs"

// Process-wide store metrics on the default registry
// (docs/OBSERVABILITY.md catalogs them). LoadDataset timing goes through
// obs.Time so this package never reads the clock directly.
var (
	storeLoads = obs.Default.CounterVec("bionav_store_loads_total",
		"Dataset loads by outcome (ok, error).", "outcome")
	storeLoadSeconds = obs.Default.Histogram("bionav_store_load_seconds",
		"Wall time to load a dataset from disk.",
		obs.ExponentialBuckets(0.01, 4, 6)) // 10ms … ~10s, then +Inf
	citationCacheHits = obs.Default.Counter("bionav_citation_cache_hits_total",
		"CitationReader point lookups served from the decoded-citation LRU.")
	citationCacheMisses = obs.Default.Counter("bionav_citation_cache_misses_total",
		"CitationReader point lookups that read and decoded from disk.")
)
