package store

import "bionav/internal/obs"

// Process-wide store metrics on the default registry
// (docs/OBSERVABILITY.md catalogs them). LoadDataset and Ingest timing go
// through obs.Time so this package never reads the clock directly.
var (
	storeLoads = obs.Default.CounterVec("bionav_store_loads_total",
		"Dataset loads by outcome (ok, error).", "outcome")
	storeLoadSeconds = obs.Default.Histogram("bionav_store_load_seconds",
		"Wall time to load a dataset from disk.",
		obs.ExponentialBuckets(0.01, 4, 6)) // 10ms … ~10s, then +Inf
	citationCacheHits = obs.Default.Counter("bionav_citation_cache_hits_total",
		"CitationReader point lookups served from the decoded-citation LRU.")
	citationCacheMisses = obs.Default.Counter("bionav_citation_cache_misses_total",
		"CitationReader point lookups that read and decoded from disk.")
	storeTornTails = obs.Default.Counter("bionav_store_torn_tails_total",
		"Torn table-log tails (crash artifacts) truncated while scanning store files.")
	ingestBatches = obs.Default.CounterVec("bionav_ingest_batches_total",
		"Ingest batches by outcome (ok, error).", "outcome")
	ingestCitations = obs.Default.Counter("bionav_ingest_citations_total",
		"Citations applied by ingest batches (fresh and upserted).")
	ingestSeconds = obs.Default.Histogram("bionav_ingest_seconds",
		"Wall time to apply one ingest batch (log append + snapshot build).",
		obs.ExponentialBuckets(0.0001, 4, 8)) // 100µs … ~1.6s, then +Inf
)
