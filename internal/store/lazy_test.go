package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func lazyFixture(t *testing.T) (string, *Dataset) {
	t.Helper()
	ds := testDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	return dir, ds
}

func TestCitationReaderMatchesFullLoad(t *testing.T) {
	dir, ds := lazyFixture(t)
	r, err := OpenCitationReader(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != ds.Corpus.Len() {
		t.Fatalf("indexed %d, corpus has %d", r.Len(), ds.Corpus.Len())
	}
	for i := 0; i < ds.Corpus.Len(); i++ {
		want := ds.Corpus.At(i)
		if !r.Has(want.ID) {
			t.Fatalf("Has(%d) = false", want.ID)
		}
		got, err := r.Get(want.ID)
		if err != nil {
			t.Fatalf("Get(%d): %v", want.ID, err)
		}
		if got.Title != want.Title || got.Year != want.Year ||
			len(got.Concepts) != len(want.Concepts) || len(got.Terms) != len(want.Terms) {
			t.Fatalf("citation %d differs: %+v vs %+v", want.ID, got, want)
		}
	}
}

func TestCitationReaderMissAndCacheHit(t *testing.T) {
	dir, ds := lazyFixture(t)
	r, err := OpenCitationReader(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Get(424242); err == nil {
		t.Fatal("missing ID served")
	}
	if r.Has(424242) {
		t.Fatal("Has(missing) = true")
	}
	// Two Gets of the same ID must return the identical cached pointer.
	id := ds.Corpus.At(0).ID
	a, err := r.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache did not serve the second Get")
	}
	// Evict by reading more than the cache holds; the ID must still load.
	for i := 1; i < 8; i++ {
		if _, err := r.Get(ds.Corpus.At(i).ID); err != nil {
			t.Fatal(err)
		}
	}
	c, err := r.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if c.Title != a.Title {
		t.Fatal("reload after eviction differs")
	}
}

func TestCitationReaderZeroCache(t *testing.T) {
	dir, ds := lazyFixture(t)
	r, err := OpenCitationReader(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	id := ds.Corpus.At(3).ID
	a, _ := r.Get(id)
	b, _ := r.Get(id)
	if a == nil || b == nil || a == b {
		t.Fatal("zero cache should decode fresh copies")
	}
}

func TestCitationReaderDetectsCorruption(t *testing.T) {
	dir, ds := lazyFixture(t)
	path := filepath.Join(dir, "citations.tbl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte beyond the leading varint of the first record's payload.
	data[4+8+6] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenCitationReader(dir, 4)
	if err != nil {
		t.Fatal(err) // index build skips CRC; corruption surfaces on Get
	}
	defer r.Close()
	if _, err := r.Get(ds.Corpus.At(0).ID); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupted record: %v", err)
	}
	// Other records stay readable.
	if _, err := r.Get(ds.Corpus.At(5).ID); err != nil {
		t.Fatal(err)
	}
}

func TestCitationReaderConcurrent(t *testing.T) {
	dir, ds := lazyFixture(t)
	r, err := OpenCitationReader(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := ds.Corpus.At((g*7 + i) % ds.Corpus.Len()).ID
				if _, err := r.Get(id); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCitationReaderDuplicateFramesLastWin pins the upsert semantic: when
// the citations table holds two frames for one ID, the later frame is the
// record served — the contract the ingest append path relies on when it
// supersedes a base citation without rewriting the base table.
func TestCitationReaderDuplicateFramesLastWin(t *testing.T) {
	dir, ds := lazyFixture(t)
	path := filepath.Join(dir, "citations.tbl")
	first := ds.Corpus.At(0)
	updated := *first
	updated.Title = "superseded title, version two"

	w, err := OpenLogAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	var enc Encoder
	if err := encodeCitation(&enc, &updated); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(enc.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenCitationReader(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != ds.Corpus.Len() {
		t.Fatalf("duplicate frame grew the index: %d vs %d", r.Len(), ds.Corpus.Len())
	}
	got, err := r.Get(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != updated.Title {
		t.Fatalf("Get(%d) served %q, want the later frame %q", first.ID, got.Title, updated.Title)
	}
}

// TestCitationReaderCountsTornTail: a crash artifact at the table's tail
// must end the scan, leave the intact prefix fully servable, and bump
// bionav_store_torn_tails_total — not silently vanish.
func TestCitationReaderCountsTornTail(t *testing.T) {
	dir, ds := lazyFixture(t)
	path := filepath.Join(dir, "citations.tbl")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-payload of the final record.
	if err := os.Truncate(path, fi.Size()-2); err != nil {
		t.Fatal(err)
	}

	before := storeTornTails.Value()
	r, err := OpenCitationReader(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := storeTornTails.Value(); got != before+1 {
		t.Fatalf("torn-tail counter %d, want %d", got, before+1)
	}
	if r.Len() != ds.Corpus.Len()-1 {
		t.Fatalf("indexed %d citations after torn tail, want %d", r.Len(), ds.Corpus.Len()-1)
	}
	if _, err := r.Get(ds.Corpus.At(0).ID); err != nil {
		t.Fatalf("intact prefix unreadable after torn tail: %v", err)
	}
}

func TestCitationReaderMissingTable(t *testing.T) {
	if _, err := OpenCitationReader(t.TempDir(), 4); err == nil {
		t.Fatal("open succeeded without citations table")
	}
}

func BenchmarkCitationReaderGet(b *testing.B) {
	ds := testDatasetSized(b, 1500, 800)
	dir := b.TempDir()
	if err := ds.Save(dir); err != nil {
		b.Fatal(err)
	}
	r, err := OpenCitationReader(dir, 64)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	ids := ds.Corpus.IDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}
