package store

import (
	"fmt"

	"bionav/internal/corpus"
	"bionav/internal/hierarchy"
	"bionav/internal/index"
)

// Snapshot is one immutable version of the dataset, stamped with a
// monotonically increasing epoch. Epoch 0 is the dataset as loaded (or
// built); every applied ingest batch produces the next epoch. Snapshots
// are copy-on-write: Ingest shares the hierarchy and every untouched
// postings list with its input, so holding an old snapshot (a pinned
// navigation session) costs only the header structures that actually
// changed. A Snapshot is safe for concurrent readers and never mutated.
type Snapshot struct {
	Epoch  uint64
	Tree   *hierarchy.Tree
	Corpus *corpus.Corpus
	Index  *index.Index
}

// IngestStats summarizes one applied batch.
type IngestStats struct {
	Fresh   int // citations new to the corpus
	Upserts int // citations that replaced an existing ID (last wins)
}

// Snapshot wraps the dataset as epoch 0 of a live corpus.
func (ds *Dataset) Snapshot() *Snapshot {
	return &Snapshot{Epoch: 0, Tree: ds.Tree, Corpus: ds.Corpus, Index: ds.Index}
}

// Dataset returns the snapshot's contents in Dataset form, e.g. for Save.
func (sn *Snapshot) Dataset() *Dataset {
	return &Dataset{Tree: sn.Tree, Corpus: sn.Corpus, Index: sn.Index}
}

// Ingest returns a new snapshot with batch applied — the incremental
// alternative to rebuilding: the corpus is upserted copy-on-write with
// per-concept count deltas (corpus.Apply), and the inverted index gets
// incremental postings updates (index.Apply) touching only the terms of
// the batch. The receiver is unchanged and stays fully usable; sessions
// pinned to it keep navigating exactly the data they started on.
//
// Every batch citation's concept list must be strictly ascending — the
// invariant the citation codec enforces on disk — and annotate only known
// concepts. A violation rejects the whole batch; no partial application.
func (sn *Snapshot) Ingest(batch []corpus.Citation) (*Snapshot, IngestStats, error) {
	var stats IngestStats
	if len(batch) == 0 {
		return nil, stats, fmt.Errorf("store: ingest: empty batch")
	}
	for i := range batch {
		if !conceptsStrictlyAscending(batch[i].Concepts) {
			return nil, stats, fmt.Errorf("%w: citation %d: concepts not strictly ascending", ErrCorrupt, batch[i].ID)
		}
	}
	// Index deltas carry each document's previously indexed terms so
	// upserts retract stale postings. Within one batch later entries see
	// earlier ones (last wins), so track the running term state.
	deltas := make([]index.Delta, 0, len(batch))
	pending := make(map[corpus.CitationID]int) // batch ID → deltas slot
	for i := range batch {
		c := &batch[i]
		if slot, ok := pending[c.ID]; ok {
			deltas[slot].New = c.Terms
			stats.Upserts++
			continue
		}
		d := index.Delta{ID: c.ID, New: c.Terms}
		if old, ok := sn.Corpus.Get(c.ID); ok {
			d.Old = old.Terms
			if d.Old == nil {
				d.Old = []string{} // non-nil: an upsert, not a fresh doc
			}
			stats.Upserts++
		} else {
			stats.Fresh++
		}
		pending[c.ID] = len(deltas)
		deltas = append(deltas, d)
	}
	corp, err := sn.Corpus.Apply(batch)
	if err != nil {
		return nil, stats, fmt.Errorf("store: ingest: %w", err)
	}
	return &Snapshot{
		Epoch:  sn.Epoch + 1,
		Tree:   sn.Tree,
		Corpus: corp,
		Index:  sn.Index.Apply(deltas),
	}, stats, nil
}

// The ingest log frames one record per batch: a citation count followed by
// each citation as a length-prefixed sub-record (the same codec as the
// citations table), so readers can locate individual citations inside a
// frame without decoding their predecessors.

func encodeIngestBatch(batch []corpus.Citation) ([]byte, error) {
	var enc, sub Encoder
	enc.PutUvarint(uint64(len(batch)))
	for i := range batch {
		sub.Reset()
		if err := encodeCitation(&sub, &batch[i]); err != nil {
			return nil, err
		}
		enc.PutBytes(sub.Bytes())
	}
	return append([]byte(nil), enc.Bytes()...), nil
}

func decodeIngestBatch(payload []byte) ([]corpus.Citation, error) {
	d := NewDecoder(payload)
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: ingest batch claims %d citations in %d bytes", ErrCorrupt, n, d.Remaining())
	}
	batch := make([]corpus.Citation, 0, n)
	for i := uint64(0); i < n; i++ {
		rec, err := d.Bytes()
		if err != nil {
			return nil, err
		}
		c, err := decodeCitation(rec)
		if err != nil {
			return nil, err
		}
		batch = append(batch, c)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return batch, nil
}
