package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Table file layout:
//
//	magic "BNT1" (4 bytes)
//	repeated records: [uint32 payload length][uint32 CRC-32C of payload][payload]
//
// Lengths and CRCs are little-endian. A torn tail (partial header or a
// payload whose CRC fails in the final record position) is treated as a
// crash artifact and truncated on open; corruption anywhere before the tail
// is a hard error.

var tableMagic = [4]byte{'B', 'N', 'T', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxRecordSize bounds a single record; it protects the reader from
// allocating absurd buffers on corrupt length prefixes.
const maxRecordSize = 256 << 20

// LogWriter appends CRC-framed records to a table file.
type LogWriter struct {
	f   *os.File
	bw  *bufio.Writer
	n   int // records written
	err error
}

// CreateLog creates (truncating) a table file at path.
func CreateLog(path string) (*LogWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("store: create log: %w", err)
	}
	w := &LogWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16)}
	if _, err := w.bw.Write(tableMagic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: write magic: %w", err)
	}
	return w, nil
}

// Append writes one record. After any error the writer is poisoned and
// every subsequent Append returns the same error.
func (w *LogWriter) Append(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("store: record of %d bytes exceeds limit", len(payload))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.err = fmt.Errorf("store: append: %w", err)
		return w.err
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.err = fmt.Errorf("store: append: %w", err)
		return w.err
	}
	w.n++
	return nil
}

// Records reports how many records have been appended.
func (w *LogWriter) Records() int { return w.n }

// Sync flushes buffered records and fsyncs the file, so every Append so
// far survives a crash. The writer stays open for further appends.
func (w *LogWriter) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("store: flush: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("store: sync: %w", err)
		return w.err
	}
	return nil
}

// OpenLogAppend opens a table file for appending. A missing file is
// created fresh; an existing one is scanned to the end of its valid
// prefix and a torn tail — the crash artifact appending after would turn
// into mid-file garbage — is physically truncated first. Truncation here
// is not separately counted: callers scan the same file with ReadLog
// immediately before, and that scan already counted the torn tail. An
// unreadable magic means the file never got past creation; it is
// recreated.
func OpenLogAppend(path string) (*LogWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return CreateLog(path)
		}
		return nil, fmt.Errorf("store: open log append: %w", err)
	}
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != tableMagic {
		f.Close()
		return CreateLog(path)
	}
	valid := int64(len(magic))
	br := bufio.NewReaderSize(io.NewSectionReader(f, valid, 1<<62), 1<<16)
	var buf []byte
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break // clean end or partial header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordSize {
			f.Close()
			return nil, fmt.Errorf("%w: %s: record claims %d bytes", ErrCorrupt, path, length)
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(br, buf); err != nil {
			break // torn payload
		}
		if crc32.Checksum(buf, castagnoli) != want {
			break // torn final record (an earlier ReadLog verified the prefix)
		}
		valid += 8 + int64(length)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek log end: %w", err)
	}
	return &LogWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16)}, nil
}

// Close flushes, fsyncs, and closes the file. Close after a write error
// still releases the descriptor but reports the earlier error.
func (w *LogWriter) Close() error {
	flushErr := w.bw.Flush()
	var syncErr error
	if w.err == nil && flushErr == nil {
		syncErr = w.f.Sync()
	}
	closeErr := w.f.Close()
	switch {
	case w.err != nil:
		return w.err
	case flushErr != nil:
		return fmt.Errorf("store: flush: %w", flushErr)
	case syncErr != nil:
		return fmt.Errorf("store: sync: %w", syncErr)
	case closeErr != nil:
		return fmt.Errorf("store: close: %w", closeErr)
	}
	return nil
}

// ReadLog reads every record of a table file, invoking fn for each payload.
// The payload slice is reused between calls; fn must copy data it retains.
// A torn final record is silently dropped (crash recovery); earlier
// corruption returns an error wrapping ErrCorrupt.
func ReadLog(path string, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: open log: %w", err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: %s: missing magic (%v)", ErrCorrupt, path, err)
	}
	if magic != tableMagic {
		return fmt.Errorf("%w: %s: bad magic %q", ErrCorrupt, path, magic[:])
	}

	var buf []byte
	for recNo := 0; ; recNo++ {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil // clean end
			}
			// Partial header: torn tail from a crash mid-append.
			storeTornTails.Inc()
			return nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordSize {
			return fmt.Errorf("%w: %s: record %d claims %d bytes", ErrCorrupt, path, recNo, length)
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(br, buf); err != nil {
			// Torn payload at the tail: recoverable.
			storeTornTails.Inc()
			return nil
		}
		if got := crc32.Checksum(buf, castagnoli); got != want {
			// A checksum failure on the final record is a torn tail; in
			// the middle of the file it is corruption. Distinguish by
			// peeking for more data.
			if _, err := br.Peek(1); err == io.EOF {
				storeTornTails.Inc()
				return nil
			}
			return fmt.Errorf("%w: %s: record %d checksum %08x != %08x", ErrCorrupt, path, recNo, got, want)
		}
		if err := fn(buf); err != nil {
			return err
		}
	}
}
