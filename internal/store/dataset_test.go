package store

import (
	"os"
	"path/filepath"
	"testing"

	"bionav/internal/corpus"
	"bionav/internal/hierarchy"
	"bionav/internal/index"
)

func testDataset(tb testing.TB) *Dataset {
	tb.Helper()
	return testDatasetSized(tb, 300, 120)
}

func testDatasetSized(tb testing.TB, concepts, citations int) *Dataset {
	tb.Helper()
	tree := hierarchy.Generate(hierarchy.GenConfig{Seed: 21, Nodes: concepts, TopLevel: 8, MaxDepth: 7})
	c := corpus.Generate(tree, corpus.GenConfig{Seed: 4, Citations: citations, MeanConcepts: 12, FirstID: 7000, YearLo: 1999, YearHi: 2008})
	return &Dataset{Tree: tree, Corpus: c, Index: index.Build(c)}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	ds := testDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadDataset(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	if got.Tree.Len() != ds.Tree.Len() {
		t.Fatalf("tree size %d vs %d", got.Tree.Len(), ds.Tree.Len())
	}
	for i := 0; i < ds.Tree.Len(); i++ {
		a, b := ds.Tree.Node(hierarchy.ConceptID(i)), got.Tree.Node(hierarchy.ConceptID(i))
		if a.Label != b.Label || a.Parent != b.Parent || a.TreeID != b.TreeID {
			t.Fatalf("node %d differs", i)
		}
		if ds.Corpus.GlobalCount(a.ID) != got.Corpus.GlobalCount(a.ID) {
			t.Fatalf("global count %d differs", i)
		}
	}

	if got.Corpus.Len() != ds.Corpus.Len() {
		t.Fatalf("corpus size %d vs %d", got.Corpus.Len(), ds.Corpus.Len())
	}
	for i := 0; i < ds.Corpus.Len(); i++ {
		a, b := ds.Corpus.At(i), got.Corpus.At(i)
		if a.ID != b.ID || a.Title != b.Title || a.Year != b.Year {
			t.Fatalf("citation %d header differs", i)
		}
		if len(a.Authors) != len(b.Authors) || len(a.Terms) != len(b.Terms) || len(a.Concepts) != len(b.Concepts) {
			t.Fatalf("citation %d payload lengths differ", i)
		}
		for j := range a.Concepts {
			if a.Concepts[j] != b.Concepts[j] {
				t.Fatalf("citation %d concept %d differs", i, j)
			}
		}
	}

	if got.Index.Docs() != ds.Index.Docs() || got.Index.Terms() != ds.Index.Terms() {
		t.Fatalf("index stats differ")
	}
	// A real search must behave identically.
	q := ds.Corpus.At(0).Terms[0]
	a, b := ds.Index.Search(q), got.Index.Search(q)
	if len(a) != len(b) {
		t.Fatalf("search result size differs for %q", q)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("search results differ for %q", q)
		}
	}
}

func TestLoadDatasetMissingTable(t *testing.T) {
	ds := testDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "searchindex.tbl")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(dir); err == nil {
		t.Fatal("load succeeded without index table")
	}
}

func TestLoadDatasetEmptyDir(t *testing.T) {
	if _, err := LoadDataset(t.TempDir()); err == nil {
		t.Fatal("load succeeded on empty directory")
	}
}

func TestSaveOverwritesExisting(t *testing.T) {
	ds := testDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Save again into the same directory; load must still succeed (stale
	// tables cleaned, no duplicate records).
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Corpus.Len() != ds.Corpus.Len() {
		t.Fatalf("corpus size %d after re-save", got.Corpus.Len())
	}
}

func BenchmarkDatasetSaveLoad(b *testing.B) {
	tree := hierarchy.Generate(hierarchy.GenConfig{Seed: 21, Nodes: 2000, TopLevel: 16, MaxDepth: 9})
	c := corpus.Generate(tree, corpus.GenConfig{Seed: 4, Citations: 1000, MeanConcepts: 40, FirstID: 1, YearLo: 1999, YearHi: 2008})
	ds := &Dataset{Tree: tree, Corpus: c, Index: index.Build(c)}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.Save(dir); err != nil {
			b.Fatal(err)
		}
		if _, err := LoadDataset(dir); err != nil {
			b.Fatal(err)
		}
	}
}
