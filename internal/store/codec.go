// Package store implements the embedded BioNav database (§VII): a
// directory of append-only binary table files with CRC-framed records,
// crash-truncation recovery, and a varint record codec. The paper keeps the
// MeSH hierarchy and the denormalized citation→concepts association table
// in Oracle; this package plays that role with a pure-Go, stdlib-only
// log-structured store.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt reports a record that fails structural validation or checksum.
var ErrCorrupt = errors.New("store: corrupt record")

// Encoder builds a binary record using varint primitives. The zero value is
// ready to use; Bytes returns the accumulated record.
type Encoder struct {
	buf []byte
}

// Reset clears the encoder for reuse, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded record. The slice aliases the encoder's buffer
// and is invalidated by the next Put or Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// PutUvarint appends an unsigned varint.
func (e *Encoder) PutUvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// PutVarint appends a signed (zig-zag) varint.
func (e *Encoder) PutVarint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutFloat64 appends a fixed-width float64.
func (e *Encoder) PutFloat64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// Decoder reads back a record written by Encoder. All methods return an
// error wrapping ErrCorrupt on truncated or malformed input, so a caller
// can `errors.Is(err, store.ErrCorrupt)`.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder over record.
func NewDecoder(record []byte) *Decoder { return &Decoder{buf: record} }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

// Varint reads a signed varint.
func (d *Decoder) Varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

// String reads a length-prefixed string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	return string(b), err
}

// Bytes reads a length-prefixed byte slice. The result aliases the record.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: length %d exceeds %d remaining bytes", ErrCorrupt, n, d.Remaining())
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

// Float64 reads a fixed-width float64.
func (d *Decoder) Float64() (float64, error) {
	if d.Remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated float64", ErrCorrupt)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v, nil
}

// Finish verifies the record was consumed exactly.
func (d *Decoder) Finish() error {
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.Remaining())
	}
	return nil
}
