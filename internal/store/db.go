package store

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A DB is a directory of table files (<name>.tbl). Writing and reading are
// separate phases, matching BioNav's off-line preprocessing / on-line
// lookup split: a Writer creates tables once; Open then serves them.

const tableSuffix = ".tbl"

var tableNameRE = regexp.MustCompile(`^[a-z][a-z0-9_-]*$`)

// Writer creates a database directory and its tables.
type Writer struct {
	dir    string
	tables map[string]*LogWriter
}

// NewWriter prepares dir (creating it if needed) for table creation.
// Existing table files in dir are removed so a re-run starts clean.
func NewWriter(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir: %w", err)
	}
	old, err := filepath.Glob(filepath.Join(dir, "*"+tableSuffix))
	if err != nil {
		return nil, fmt.Errorf("store: glob: %w", err)
	}
	for _, p := range old {
		if err := os.Remove(p); err != nil {
			return nil, fmt.Errorf("store: clean %s: %w", p, err)
		}
	}
	return &Writer{dir: dir, tables: make(map[string]*LogWriter)}, nil
}

// CreateTable opens a new table for appending. Table names are restricted
// to lowercase identifiers to keep paths portable.
func (w *Writer) CreateTable(name string) (*LogWriter, error) {
	if !tableNameRE.MatchString(name) {
		return nil, fmt.Errorf("store: invalid table name %q", name)
	}
	if _, dup := w.tables[name]; dup {
		return nil, fmt.Errorf("store: table %q already created", name)
	}
	lw, err := CreateLog(filepath.Join(w.dir, name+tableSuffix))
	if err != nil {
		return nil, err
	}
	w.tables[name] = lw
	return lw, nil
}

// Close closes every table, reporting the first error.
func (w *Writer) Close() error {
	names := make([]string, 0, len(w.tables))
	for n := range w.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var first error
	for _, n := range names {
		if err := w.tables[n].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DB is a read-only view of a database directory.
type DB struct {
	dir    string
	tables []string
}

// Open lists the tables present in dir. Record contents are streamed on
// demand by ForEach, not loaded eagerly.
func Open(dir string) (*DB, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open db: %w", err)
	}
	db := &DB{dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), tableSuffix) {
			continue
		}
		db.tables = append(db.tables, strings.TrimSuffix(e.Name(), tableSuffix))
	}
	sort.Strings(db.tables)
	return db, nil
}

// Tables returns the table names in sorted order.
func (db *DB) Tables() []string { return append([]string(nil), db.tables...) }

// HasTable reports whether the named table exists.
func (db *DB) HasTable(name string) bool {
	i := sort.SearchStrings(db.tables, name)
	return i < len(db.tables) && db.tables[i] == name
}

// ForEach streams every record of a table through fn. The payload slice is
// reused; fn must copy data it retains.
func (db *DB) ForEach(table string, fn func(payload []byte) error) error {
	if !db.HasTable(table) {
		return fmt.Errorf("store: no table %q in %s", table, db.dir)
	}
	return ReadLog(filepath.Join(db.dir, table+tableSuffix), fn)
}
