package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"bionav/internal/corpus"
	"bionav/internal/faults"
	"bionav/internal/obs"
)

// tableIngest is the append-only batch log of a live database directory.
// The base tables written by Save stay immutable; every ingested batch is
// one framed record here, replayed through the same Snapshot.Ingest path
// at the next OpenLive — so the in-memory incremental update and the
// durable one cannot drift, and the epoch count (number of applied
// batches) survives restarts.
const tableIngest = "ingestlog"

// Live manages the current snapshot of a growing corpus: an atomic
// pointer readers load without locking, and a serialized ingest path that
// journals each batch to the ingest log (write-ahead, fsynced) before
// publishing the next epoch. Safe for concurrent use.
type Live struct {
	dir string // database directory; "" = memory-only (no persistence)

	mu  sync.Mutex
	log *LogWriter // guarded by mu; nil when memory-only

	cur atomic.Pointer[Snapshot]
}

// NewLive wraps an in-memory dataset as a live corpus without
// persistence: ingested batches update the current snapshot but are not
// written anywhere (the demo-server mode).
func NewLive(ds *Dataset) *Live {
	l := &Live{}
	l.cur.Store(ds.Snapshot())
	return l
}

// OpenLive loads the dataset from dir and replays its ingest log, batch
// by batch, through Snapshot.Ingest — arriving at the same epoch the
// directory last served — then opens the log for appending (truncating a
// torn tail left by a crash mid-ingest).
func OpenLive(dir string) (*Live, error) {
	ds, err := LoadDataset(dir)
	if err != nil {
		return nil, err
	}
	snap := ds.Snapshot()
	path := filepath.Join(dir, tableIngest+tableSuffix)
	// A log shorter than its magic is the artifact of a crash right after
	// creation: nothing was ever appended, so there is nothing to replay
	// (OpenLogAppend below recreates it).
	if fi, err := os.Stat(path); err == nil && fi.Size() >= int64(len(tableMagic)) {
		err := ReadLog(path, func(payload []byte) error {
			batch, derr := decodeIngestBatch(payload)
			if derr != nil {
				return derr
			}
			next, _, derr := snap.Ingest(batch)
			if derr != nil {
				return fmt.Errorf("store: replay ingest log: %w", derr)
			}
			snap = next
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	log, err := OpenLogAppend(path)
	if err != nil {
		return nil, err
	}
	l := &Live{dir: dir, log: log}
	l.cur.Store(snap)
	return l, nil
}

// Current returns the serving snapshot. The result is immutable; callers
// pin an epoch simply by keeping the pointer.
func (l *Live) Current() *Snapshot { return l.cur.Load() }

// Ingest applies one batch: the batch is framed and fsynced to the ingest
// log first (when persistent), then the next snapshot is built
// copy-on-write and published. Concurrent Ingest calls serialize;
// concurrent readers are never blocked and see either the old or the new
// epoch, atomically. On error nothing is published — though once the log
// append succeeded, a later failure leaves the batch durable, so a retry
// after reopen may find it already applied (at-least-once).
//
// The faults.SiteStoreIngest failpoint fires before any work, so an
// injected failure exercises the caller's error path with no state
// touched.
func (l *Live) Ingest(batch []corpus.Citation) (sn *Snapshot, err error) {
	defer obs.Time(ingestSeconds)()
	defer func() {
		if err != nil {
			ingestBatches.With("error").Inc()
		} else {
			ingestBatches.With("ok").Inc()
		}
	}()
	if err := faults.Inject(faults.SiteStoreIngest); err != nil {
		return nil, fmt.Errorf("store: ingest: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	next, _, err := l.cur.Load().Ingest(batch)
	if err != nil {
		return nil, err
	}
	if l.log != nil {
		payload, err := encodeIngestBatch(batch)
		if err != nil {
			return nil, err
		}
		if err := l.log.Append(payload); err != nil {
			return nil, err
		}
		if err := l.log.Sync(); err != nil {
			return nil, err
		}
	}
	l.cur.Store(next)
	ingestCitations.Add(uint64(len(batch)))
	return next, nil
}

// Close closes the ingest log (a no-op for memory-only corpora). The Live
// must not Ingest afterwards; Current stays valid.
func (l *Live) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log == nil {
		return nil
	}
	err := l.log.Close()
	l.log = nil
	return err
}
