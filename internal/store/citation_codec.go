package store

import (
	"fmt"

	"bionav/internal/corpus"
	"bionav/internal/hierarchy"
)

// conceptsStrictlyAscending reports whether a concept annotation list is
// strictly ascending and all-positive — the invariant the delta codec
// requires on both sides. Root (0) and negative IDs are excluded: a valid
// first delta from prev=0 is therefore always >= 1.
func conceptsStrictlyAscending(concepts []hierarchy.ConceptID) bool {
	prev := hierarchy.ConceptID(0)
	for _, id := range concepts {
		if id <= prev {
			return false
		}
		prev = id
	}
	return true
}

// encodeCitation serializes one citation record: ID, title, year, authors,
// terms, then the concept annotations delta-encoded. The concepts must be
// strictly ascending: the deltas are written as uvarints, so an unsorted or
// duplicated list would silently wrap to a huge positive delta and decode
// into garbage. Encoding validates and refuses instead.
func encodeCitation(enc *Encoder, c *corpus.Citation) error {
	if !conceptsStrictlyAscending(c.Concepts) {
		return fmt.Errorf("%w: citation %d: concepts not strictly ascending", ErrCorrupt, c.ID)
	}
	enc.PutVarint(int64(c.ID))
	enc.PutString(c.Title)
	enc.PutUvarint(uint64(c.Year))
	enc.PutUvarint(uint64(len(c.Authors)))
	for _, a := range c.Authors {
		enc.PutString(a)
	}
	enc.PutUvarint(uint64(len(c.Terms)))
	for _, t := range c.Terms {
		enc.PutString(t)
	}
	enc.PutUvarint(uint64(len(c.Concepts)))
	prev := hierarchy.ConceptID(0)
	for _, id := range c.Concepts {
		enc.PutUvarint(uint64(id - prev))
		prev = id
	}
	return nil
}

// decodeCitation parses a record written by encodeCitation.
func decodeCitation(payload []byte) (corpus.Citation, error) {
	d := NewDecoder(payload)
	var c corpus.Citation
	id, err := d.Varint()
	if err != nil {
		return c, err
	}
	c.ID = corpus.CitationID(id)
	if c.Title, err = d.String(); err != nil {
		return c, err
	}
	year, err := d.Uvarint()
	if err != nil {
		return c, err
	}
	c.Year = int(year)
	na, err := d.Uvarint()
	if err != nil {
		return c, err
	}
	for j := uint64(0); j < na; j++ {
		a, err := d.String()
		if err != nil {
			return c, err
		}
		c.Authors = append(c.Authors, a)
	}
	nt, err := d.Uvarint()
	if err != nil {
		return c, err
	}
	for j := uint64(0); j < nt; j++ {
		t, err := d.String()
		if err != nil {
			return c, err
		}
		c.Terms = append(c.Terms, t)
	}
	nc, err := d.Uvarint()
	if err != nil {
		return c, err
	}
	prev := hierarchy.ConceptID(0)
	for j := uint64(0); j < nc; j++ {
		delta, err := d.Uvarint()
		if err != nil {
			return c, err
		}
		// Mirror index.Decode's "postings not ascending" check: a zero
		// delta is a duplicate concept, an overflowing one goes negative.
		// Either way the record never came from a valid encode.
		next := prev + hierarchy.ConceptID(delta)
		if next <= prev {
			return c, fmt.Errorf("%w: citation %d: concepts not strictly ascending", ErrCorrupt, c.ID)
		}
		prev = next
		c.Concepts = append(c.Concepts, prev)
	}
	if err := d.Finish(); err != nil {
		return c, err
	}
	return c, nil
}
