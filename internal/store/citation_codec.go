package store

import (
	"bionav/internal/corpus"
	"bionav/internal/hierarchy"
)

// encodeCitation serializes one citation record: ID, title, year, authors,
// terms, then the concept annotations delta-encoded (they are sorted
// ascending by construction).
func encodeCitation(enc *Encoder, c *corpus.Citation) {
	enc.PutVarint(int64(c.ID))
	enc.PutString(c.Title)
	enc.PutUvarint(uint64(c.Year))
	enc.PutUvarint(uint64(len(c.Authors)))
	for _, a := range c.Authors {
		enc.PutString(a)
	}
	enc.PutUvarint(uint64(len(c.Terms)))
	for _, t := range c.Terms {
		enc.PutString(t)
	}
	enc.PutUvarint(uint64(len(c.Concepts)))
	prev := hierarchy.ConceptID(0)
	for _, id := range c.Concepts {
		enc.PutUvarint(uint64(id - prev))
		prev = id
	}
}

// decodeCitation parses a record written by encodeCitation.
func decodeCitation(payload []byte) (corpus.Citation, error) {
	d := NewDecoder(payload)
	var c corpus.Citation
	id, err := d.Varint()
	if err != nil {
		return c, err
	}
	c.ID = corpus.CitationID(id)
	if c.Title, err = d.String(); err != nil {
		return c, err
	}
	year, err := d.Uvarint()
	if err != nil {
		return c, err
	}
	c.Year = int(year)
	na, err := d.Uvarint()
	if err != nil {
		return c, err
	}
	for j := uint64(0); j < na; j++ {
		a, err := d.String()
		if err != nil {
			return c, err
		}
		c.Authors = append(c.Authors, a)
	}
	nt, err := d.Uvarint()
	if err != nil {
		return c, err
	}
	for j := uint64(0); j < nt; j++ {
		t, err := d.String()
		if err != nil {
			return c, err
		}
		c.Terms = append(c.Terms, t)
	}
	nc, err := d.Uvarint()
	if err != nil {
		return c, err
	}
	prev := hierarchy.ConceptID(0)
	for j := uint64(0); j < nc; j++ {
		delta, err := d.Uvarint()
		if err != nil {
			return c, err
		}
		prev += hierarchy.ConceptID(delta)
		c.Concepts = append(c.Concepts, prev)
	}
	if err := d.Finish(); err != nil {
		return c, err
	}
	return c, nil
}
