package store

import (
	"bytes"
	"fmt"

	"bionav/internal/corpus"
	"bionav/internal/faults"
	"bionav/internal/hierarchy"
	"bionav/internal/index"
	"bionav/internal/obs"
)

// Dataset bundles everything BioNav's on-line subsystem needs: the concept
// hierarchy with global counts, the citation corpus with its denormalized
// concept associations, and the prebuilt keyword index. This mirrors the
// off-line pre-processing output of §VII.
type Dataset struct {
	Tree   *hierarchy.Tree
	Corpus *corpus.Corpus
	Index  *index.Index
}

// Table names of the BioNav schema.
const (
	tableConcepts  = "concepts"  // one record per concept, in ID order
	tableCitations = "citations" // one record per citation, denormalized
	tableIndex     = "searchindex"
)

// Save writes the dataset to a fresh database directory.
func (ds *Dataset) Save(dir string) error {
	return ds.SaveWith(dir, nil)
}

// SaveWith writes the dataset plus any extra tables produced by extra;
// callers (e.g. the workload package) use it to persist sidecar metadata
// in the same database directory.
func (ds *Dataset) SaveWith(dir string, extra func(*Writer) error) error {
	w, err := NewWriter(dir)
	if err != nil {
		return err
	}
	err = ds.save(w)
	if err == nil && extra != nil {
		err = extra(w)
	}
	if err != nil {
		w.Close() // release descriptors; the save error wins
		return err
	}
	return w.Close()
}

func (ds *Dataset) save(w *Writer) error {
	var enc Encoder

	ct, err := w.CreateTable(tableConcepts)
	if err != nil {
		return err
	}
	for i := 0; i < ds.Tree.Len(); i++ {
		n := ds.Tree.Node(hierarchy.ConceptID(i))
		enc.Reset()
		enc.PutVarint(int64(n.Parent))
		enc.PutString(n.Label)
		enc.PutUvarint(uint64(ds.Corpus.GlobalCount(n.ID)))
		if err := ct.Append(enc.Bytes()); err != nil {
			return err
		}
	}

	cit, err := w.CreateTable(tableCitations)
	if err != nil {
		return err
	}
	for i := 0; i < ds.Corpus.Len(); i++ {
		enc.Reset()
		if err := encodeCitation(&enc, ds.Corpus.At(i)); err != nil {
			return err
		}
		if err := cit.Append(enc.Bytes()); err != nil {
			return err
		}
	}

	it, err := w.CreateTable(tableIndex)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := index.Encode(&buf, ds.Index); err != nil {
		return err
	}
	return it.Append(buf.Bytes())
}

// LoadDataset reads a dataset previously written by Save. The
// faults.SiteStoreLoad failpoint fires before any file is opened, so an
// injected failure exercises the caller's error path without touching
// state.
func LoadDataset(dir string) (ds *Dataset, err error) {
	defer obs.Time(storeLoadSeconds)()
	defer func() {
		if err != nil {
			storeLoads.With("error").Inc()
		} else {
			storeLoads.With("ok").Inc()
		}
	}()
	if err := faults.Inject(faults.SiteStoreLoad); err != nil {
		return nil, fmt.Errorf("store: load dataset: %w", err)
	}
	db, err := Open(dir)
	if err != nil {
		return nil, err
	}

	// Concepts: rebuild the tree and collect global counts.
	var (
		b       *hierarchy.Builder
		counts  []int64
		nodeNum int
	)
	err = db.ForEach(tableConcepts, func(payload []byte) error {
		d := NewDecoder(payload)
		parent, err := d.Varint()
		if err != nil {
			return err
		}
		label, err := d.String()
		if err != nil {
			return err
		}
		gc, err := d.Uvarint()
		if err != nil {
			return err
		}
		if err := d.Finish(); err != nil {
			return err
		}
		if nodeNum == 0 {
			if parent != int64(hierarchy.None) {
				return fmt.Errorf("%w: first concept is not a root", ErrCorrupt)
			}
			b = hierarchy.NewBuilder(label)
		} else {
			if parent < 0 || parent >= int64(nodeNum) {
				return fmt.Errorf("%w: concept %d has forward parent %d", ErrCorrupt, nodeNum, parent)
			}
			b.Add(hierarchy.ConceptID(parent), label)
		}
		counts = append(counts, int64(gc))
		nodeNum++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("%w: empty concepts table", ErrCorrupt)
	}
	tree, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("store: rebuild hierarchy: %w", err)
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("store: rebuild hierarchy: %w", err)
	}

	// Citations.
	var citations []corpus.Citation
	err = db.ForEach(tableCitations, func(payload []byte) error {
		c, derr := decodeCitation(payload)
		if derr != nil {
			return derr
		}
		citations = append(citations, c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	corp, err := corpus.New(tree, citations, counts)
	if err != nil {
		return nil, fmt.Errorf("store: rebuild corpus: %w", err)
	}

	// Search index.
	var ix *index.Index
	err = db.ForEach(tableIndex, func(payload []byte) error {
		if ix != nil {
			return fmt.Errorf("%w: multiple index records", ErrCorrupt)
		}
		var derr error
		ix, derr = index.Decode(bytes.NewReader(payload))
		return derr
	})
	if err != nil {
		return nil, err
	}
	if ix == nil {
		return nil, fmt.Errorf("%w: missing index record", ErrCorrupt)
	}

	return &Dataset{Tree: tree, Corpus: corp, Index: ix}, nil
}
