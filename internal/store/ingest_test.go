package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bionav/internal/corpus"
	"bionav/internal/faults"
	"bionav/internal/hierarchy"
)

// ingestCitation builds a batch citation annotating the given (ascending)
// concepts, with one distinctive search term.
func ingestCitation(id int64, term string, concepts ...int) corpus.Citation {
	ids := make([]hierarchy.ConceptID, len(concepts))
	for i, c := range concepts {
		ids[i] = hierarchy.ConceptID(c)
	}
	return corpus.Citation{
		ID:       corpus.CitationID(id),
		Title:    fmt.Sprintf("ingested %d", id),
		Authors:  []string{"Doe J"},
		Year:     2009,
		Terms:    []string{term, "ingested"},
		Concepts: ids,
	}
}

func TestSnapshotIngestFreshCitation(t *testing.T) {
	ds := testDataset(t)
	base := ds.Snapshot()
	if base.Epoch != 0 {
		t.Fatalf("base epoch = %d, want 0", base.Epoch)
	}
	baseLen := base.Corpus.Len()

	next, stats, err := base.Ingest([]corpus.Citation{ingestCitation(900001, "zebrafish", 1, 2, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 1 || stats.Fresh != 1 || stats.Upserts != 0 {
		t.Fatalf("epoch %d, stats %+v", next.Epoch, stats)
	}
	if next.Corpus.Len() != baseLen+1 {
		t.Fatalf("corpus len %d, want %d", next.Corpus.Len(), baseLen+1)
	}
	if got := next.Index.Search("zebrafish"); len(got) != 1 || got[0] != 900001 {
		t.Fatalf("new index Search(zebrafish) = %v", got)
	}
	if next.Index.Docs() != base.Index.Docs()+1 {
		t.Fatalf("docs %d, want %d", next.Index.Docs(), base.Index.Docs()+1)
	}

	// The receiver is copy-on-write: the old epoch must be untouched.
	if base.Corpus.Len() != baseLen {
		t.Fatal("ingest mutated the receiver's corpus")
	}
	if got := base.Index.Search("zebrafish"); len(got) != 0 {
		t.Fatalf("ingest leaked postings into the receiver's index: %v", got)
	}
	if _, ok := base.Corpus.Get(900001); ok {
		t.Fatal("ingest leaked the citation into the receiver's corpus")
	}
}

func TestSnapshotIngestUpsertRetractsStalePostings(t *testing.T) {
	ds := testDataset(t)
	base := ds.Snapshot()
	s1, _, err := base.Ingest([]corpus.Citation{ingestCitation(900001, "axolotl", 3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	s2, stats, err := s1.Ingest([]corpus.Citation{ingestCitation(900001, "tardigrade", 3, 4, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Upserts != 1 || stats.Fresh != 0 {
		t.Fatalf("stats %+v, want one upsert", stats)
	}
	if s2.Corpus.Len() != s1.Corpus.Len() {
		t.Fatal("upsert grew the corpus")
	}
	if got := s2.Index.Search("axolotl"); len(got) != 0 {
		t.Fatalf("stale posting survived the upsert: %v", got)
	}
	if got := s2.Index.Search("tardigrade"); len(got) != 1 || got[0] != 900001 {
		t.Fatalf("Search(tardigrade) = %v", got)
	}
	if s2.Index.Docs() != s1.Index.Docs() {
		t.Fatalf("upsert changed doc count %d -> %d", s1.Index.Docs(), s2.Index.Docs())
	}
	c, ok := s2.Corpus.Get(900001)
	if !ok || c.Title != "ingested 900001" || len(c.Concepts) != 3 {
		t.Fatalf("upserted citation = %+v, %v", c, ok)
	}
	// Count deltas never decrement: the clamp invariant cnt(c) >= |res(c)|
	// must hold for the newly annotated concept.
	if s2.Corpus.GlobalCount(hierarchy.ConceptID(6)) < s1.Corpus.GlobalCount(hierarchy.ConceptID(6))+1 {
		t.Fatal("upsert did not count the newly added annotation")
	}
}

func TestSnapshotIngestWithinBatchLastWins(t *testing.T) {
	base := testDataset(t).Snapshot()
	next, stats, err := base.Ingest([]corpus.Citation{
		ingestCitation(900007, "firstversion", 1),
		ingestCitation(900007, "secondversion", 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fresh != 1 || stats.Upserts != 1 {
		t.Fatalf("stats %+v, want 1 fresh + 1 within-batch upsert", stats)
	}
	if got := next.Index.Search("firstversion"); len(got) != 0 {
		t.Fatalf("earlier duplicate's postings survived: %v", got)
	}
	if got := next.Index.Search("secondversion"); len(got) != 1 || got[0] != 900007 {
		t.Fatalf("Search(secondversion) = %v", got)
	}
	c, _ := next.Corpus.Get(900007)
	if len(c.Concepts) != 1 || c.Concepts[0] != 2 {
		t.Fatalf("corpus kept the wrong duplicate: %+v", c)
	}
}

func TestSnapshotIngestRejectsBadBatches(t *testing.T) {
	base := testDataset(t).Snapshot()
	if _, _, err := base.Ingest(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	// Unsorted concepts violate the codec invariant; the whole batch is
	// rejected with ErrCorrupt, even when another entry is valid.
	bad := ingestCitation(900002, "ok", 0)
	bad.Concepts = []hierarchy.ConceptID{5, 3}
	_, _, err := base.Ingest([]corpus.Citation{ingestCitation(900003, "fine", 1), bad})
	requireCorrupt(t, err)
	// An annotation outside the hierarchy is rejected by corpus.Apply.
	if _, _, err := base.Ingest([]corpus.Citation{ingestCitation(900004, "ghost", base.Tree.Len()+40)}); err == nil {
		t.Fatal("unknown concept accepted")
	}
	if _, ok := base.Corpus.Get(900003); ok {
		t.Fatal("rejected batch partially applied")
	}
}

func TestIngestBatchCodecRoundTrip(t *testing.T) {
	batch := []corpus.Citation{
		ingestCitation(900010, "alpha", 1, 4),
		ingestCitation(900011, "beta", 2),
	}
	payload, err := encodeIngestBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeIngestBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("decoded %d citations, want %d", len(got), len(batch))
	}
	for i := range batch {
		if got[i].ID != batch[i].ID || got[i].Title != batch[i].Title || len(got[i].Concepts) != len(batch[i].Concepts) {
			t.Fatalf("citation %d differs: %+v vs %+v", i, got[i], batch[i])
		}
	}
	// Truncations and bit flips must surface as ErrCorrupt, not panics.
	for cut := 0; cut < len(payload); cut++ {
		if _, err := decodeIngestBatch(payload[:cut]); err != nil {
			requireCorrupt(t, err)
		}
	}
}

func TestLiveIngestPersistsAndReplays(t *testing.T) {
	ds := testDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	live, err := OpenLive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.Ingest([]corpus.Citation{ingestCitation(900020, "pangolin", 1, 2)}); err != nil {
		t.Fatal(err)
	}
	sn, err := live.Ingest([]corpus.Citation{
		ingestCitation(900021, "quokka", 3),
		ingestCitation(900020, "pangolinv2", 1, 2, 4), // upsert across batches
	})
	if err != nil {
		t.Fatal(err)
	}
	if sn.Epoch != 2 {
		t.Fatalf("epoch %d after two batches, want 2", sn.Epoch)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the ingest log replays through the same Snapshot.Ingest path,
	// so the epoch and every incremental update are durable.
	re, err := OpenLive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	cur := re.Current()
	if cur.Epoch != 2 {
		t.Fatalf("replayed epoch %d, want 2", cur.Epoch)
	}
	if got := cur.Index.Search("pangolin"); len(got) != 0 {
		t.Fatalf("stale postings survived the replayed upsert: %v", got)
	}
	if got := cur.Index.Search("pangolinv2"); len(got) != 1 || got[0] != 900020 {
		t.Fatalf("Search(pangolinv2) = %v", got)
	}
	if got := cur.Index.Search("quokka"); len(got) != 1 || got[0] != 900021 {
		t.Fatalf("Search(quokka) = %v", got)
	}

	// A CitationReader opened over the directory serves the ingested
	// citations, base/ingest-log duplicates resolving last-wins (upsert).
	r, err := OpenCitationReader(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != ds.Corpus.Len()+2 {
		t.Fatalf("reader indexed %d citations, want %d", r.Len(), ds.Corpus.Len()+2)
	}
	c, err := r.Get(900020)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Concepts) != 3 || c.Terms[0] != "pangolinv2" {
		t.Fatalf("reader served a stale version: %+v", c)
	}

	// Appending after reopen continues the epoch sequence.
	sn, err = re.Ingest([]corpus.Citation{ingestCitation(900022, "kakapo", 5)})
	if err != nil {
		t.Fatal(err)
	}
	if sn.Epoch != 3 {
		t.Fatalf("epoch %d after reopen+ingest, want 3", sn.Epoch)
	}
}

func TestOpenLiveTruncatesTornIngestTail(t *testing.T) {
	ds := testDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	live, err := OpenLive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.Ingest([]corpus.Citation{ingestCitation(900030, "okapi", 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Ingest([]corpus.Citation{ingestCitation(900031, "numbat", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final batch mid-frame, as a crash mid-append would.
	path := filepath.Join(dir, tableIngest+tableSuffix)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	before := storeTornTails.Value()
	re, err := OpenLive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := storeTornTails.Value(); got != before+1 {
		t.Fatalf("torn-tail counter %d, want %d", got, before+1)
	}
	cur := re.Current()
	if cur.Epoch != 1 {
		t.Fatalf("epoch %d after torn tail, want 1 (the intact batch)", cur.Epoch)
	}
	if got := cur.Index.Search("numbat"); len(got) != 0 {
		t.Fatalf("torn batch partially applied: %v", got)
	}
	// The tail was truncated, so appending resumes on a clean frame edge.
	sn, err := re.Ingest([]corpus.Citation{ingestCitation(900032, "dugong", 3)})
	if err != nil {
		t.Fatal(err)
	}
	if sn.Epoch != 2 {
		t.Fatalf("epoch %d after post-truncation ingest, want 2", sn.Epoch)
	}
}

// TestFaultIngest arms the store/ingest failpoint: Live.Ingest must fail
// cleanly — no snapshot published, no epoch bump, no log growth — and
// recover the moment the fault is disarmed.
func TestFaultIngest(t *testing.T) {
	t.Cleanup(faults.Reset)
	live := NewLive(testDataset(t))
	batch := []corpus.Citation{ingestCitation(900040, "cassowary", 1)}

	faults.Arm(faults.SiteStoreIngest, faults.Always(), nil)
	if _, err := live.Ingest(batch); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if got := live.Current().Epoch; got != 0 {
		t.Fatalf("failed ingest published epoch %d", got)
	}
	if _, ok := live.Current().Corpus.Get(900040); ok {
		t.Fatal("failed ingest applied its batch")
	}

	faults.Disarm(faults.SiteStoreIngest)
	sn, err := live.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Epoch != 1 {
		t.Fatalf("epoch %d after recovery, want 1", sn.Epoch)
	}
}

// TestConcurrentReadAndIngest races point lookups and snapshot readers
// against a stream of ingest swaps (run under -race in `make ingest-test`):
// CitationReader.Get ReadAts the log files while Live appends to them, and
// Current readers must only ever observe fully published epochs.
func TestConcurrentReadAndIngest(t *testing.T) {
	ds := testDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	live, err := OpenLive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	r, err := OpenCitationReader(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const batches = 40
	ids := ds.Corpus.IDs()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.Get(ids[(g*31+i)%len(ids)]); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				cur := live.Current()
				if cur.Corpus.Len() < ds.Corpus.Len() {
					t.Error("observed a snapshot smaller than the base dataset")
					return
				}
			}
		}(g)
	}
	var last uint64
	for i := 0; i < batches; i++ {
		sn, err := live.Ingest([]corpus.Citation{ingestCitation(int64(910000+i), fmt.Sprintf("stress%d", i), 1+i%5)})
		if err != nil {
			t.Fatal(err)
		}
		if sn.Epoch != last+1 {
			t.Fatalf("epoch %d after batch %d, want %d", sn.Epoch, i, last+1)
		}
		last = sn.Epoch
	}
	close(stop)
	wg.Wait()
}

func BenchmarkIngest(b *testing.B) {
	live := NewLive(testDatasetSized(b, 300, 500))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := []corpus.Citation{
			ingestCitation(int64(920000+i*2), "benchterm", 1+i%7, 10+i%7),
			ingestCitation(int64(920001+i*2), "benchterm", 2+i%7, 11+i%7),
		}
		if _, err := live.Ingest(batch); err != nil {
			b.Fatal(err)
		}
	}
}
