package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	if err := Inject("never/armed"); err != nil {
		t.Fatalf("disarmed site returned %v", err)
	}
	if Enabled() {
		t.Fatal("Enabled with no sites armed")
	}
}

func TestFaultAlways(t *testing.T) {
	t.Cleanup(Reset)
	sentinel := errors.New("boom")
	Arm("t/always", Always(), ErrAction(sentinel))
	for i := 0; i < 3; i++ {
		if err := Inject("t/always"); !errors.Is(err, sentinel) {
			t.Fatalf("hit %d: err = %v, want sentinel", i, err)
		}
	}
	hits, fires := Counts("t/always")
	if hits != 3 || fires != 3 {
		t.Fatalf("counts = %d/%d, want 3/3", hits, fires)
	}
	if !Enabled() {
		t.Fatal("Enabled = false with a site armed")
	}
}

func TestFaultAfterN(t *testing.T) {
	t.Cleanup(Reset)
	Arm("t/aftern", AfterN(2), nil)
	var errs int
	for i := 0; i < 5; i++ {
		if err := Inject("t/aftern"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("default action error = %v", err)
			}
			errs++
		} else if i >= 2 {
			t.Fatalf("hit %d did not fire", i)
		}
	}
	if errs != 3 {
		t.Fatalf("fired %d times, want 3", errs)
	}
}

func TestFaultProbDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	run := func(seed uint64) []bool {
		Arm("t/prob", Prob(0.5, seed), nil)
		out := make([]bool, 64)
		for i := range out {
			out[i] = Inject("t/prob") != nil
		}
		Disarm("t/prob")
		return out
	}
	a, b := run(42), run(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identical seeds", i)
		}
		if a[i] {
			fired++
		}
	}
	// p=0.5 over 64 draws: both outcomes must occur.
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob trigger fired %d/%d times", fired, len(a))
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fire patterns")
	}
}

func TestFaultSleepActionHonorsContext(t *testing.T) {
	t.Cleanup(Reset)
	Arm("t/sleep", Always(), SleepAction(10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := InjectCtx(ctx, "t/sleep")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("sleep action ignored cancellation (%v)", elapsed)
	}
}

func TestFaultRearmAndDisarm(t *testing.T) {
	t.Cleanup(Reset)
	Arm("t/rearm", Always(), nil)
	if Inject("t/rearm") == nil {
		t.Fatal("armed site did not fire")
	}
	Arm("t/rearm", AfterN(10), nil) // re-arm resets counters and trigger
	if err := Inject("t/rearm"); err != nil {
		t.Fatalf("re-armed AfterN(10) fired on first hit: %v", err)
	}
	Disarm("t/rearm")
	if err := Inject("t/rearm"); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
	if Enabled() {
		t.Fatal("Enabled after last site disarmed")
	}
}

// TestFaultConcurrentInject exercises the registry under -race: concurrent
// Injects against one site while another goroutine arms/disarms a second.
func TestFaultConcurrentInject(t *testing.T) {
	t.Cleanup(Reset)
	Arm("t/conc", AfterN(100), nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = Inject("t/conc")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			Arm(fmt.Sprintf("t/churn%d", i%4), Always(), nil)
			Disarm(fmt.Sprintf("t/churn%d", i%4))
		}
	}()
	wg.Wait()
	hits, fires := Counts("t/conc")
	if hits != 800 {
		t.Fatalf("hits = %d, want 800", hits)
	}
	if fires != 700 {
		t.Fatalf("fires = %d, want 700", fires)
	}
}
