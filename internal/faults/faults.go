// Package faults is a deterministic failpoint registry for resilience
// testing. Production code marks named sites with Inject / InjectCtx;
// tests arm a site with a trigger (always, after-N, seeded-probabilistic)
// and an action (return an error, stall until a deadline) and then drive
// the system through its degradation paths. Disarmed sites cost one
// atomic load, so the hooks stay in production builds — the same
// discipline as freebsd's fail(9) or etcd's gofail, without the code
// generation.
//
// The registry is global: a failpoint armed in one test is visible to
// every goroutine until disarmed. Tests that arm sites must Reset in
// cleanup and must not run in parallel with tests that depend on the
// same sites staying disarmed.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bionav/internal/rng"
)

// Site names wired into this repository, collected here as the failpoint
// catalog (see docs/RESILIENCE.md).
const (
	// SiteDP fires inside Opt-EdgeCut's DP at every cancellation
	// checkpoint: once on entry, then every dpStride fold steps.
	SiteDP = "core/optedgecut.dp"
	// SitePolyDP fires inside PolyCut's anytime driver at every
	// cancellation checkpoint: once on entry, after the stats precompute,
	// then before each deepening round and every polyStride DP nodes.
	SitePolyDP = "core/polycut.dp"
	// SiteNavCacheGet fires on navigation-tree cache lookups; an error
	// action forces a miss (the caller rebuilds the tree).
	SiteNavCacheGet = "navtree/cache.get"
	// SiteStoreLoad fires at the start of store.LoadDataset; an error
	// action makes the load fail cleanly.
	SiteStoreLoad = "store/dataset.load"
	// SiteJournalAppend fires at the head of journal.Append; an error
	// action drops the record before it reaches the segment (the server
	// logs and counts the miss, the request still succeeds).
	SiteJournalAppend = "journal/append"
	// SiteJournalFsync fires before every journal segment fsync; an error
	// action simulates a failed fsync (full disk, dying device).
	SiteJournalFsync = "journal/fsync"
	// SiteJournalRecover fires once per session during server journal
	// recovery; an error action makes that session's recovery fail — it
	// is logged and counted, never fatal to startup.
	SiteJournalRecover = "server/journal.recover"
	// SiteStoreIngest fires at the head of store.Live.Ingest, before any
	// work; an error action makes the ingest fail cleanly — nothing is
	// appended to the log and no snapshot is published.
	SiteStoreIngest = "store/ingest"
)

// ErrInjected is the default error returned by armed sites with no
// explicit action.
var ErrInjected = errors.New("faults: injected failure")

// Action runs when a site fires. The context is the caller's (Background
// for Inject); actions that wait must honor its cancellation.
type Action func(ctx context.Context) error

// ErrAction returns err when the site fires.
func ErrAction(err error) Action {
	return func(context.Context) error { return err }
}

// SleepAction stalls the caller for d or until its context is done,
// whichever comes first, returning the context error on cancellation.
// This is the "hostile component" simulator: it makes a site arbitrarily
// slow while still honoring deadlines.
func SleepAction(d time.Duration) Action {
	return func(ctx context.Context) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// trigger decides whether a given hit fires.
type trigger struct {
	kind triggerKind
	n    uint64
	p    float64
	src  *rng.Source
}

type triggerKind int

const (
	triggerAlways triggerKind = iota
	triggerAfterN
	triggerProb
)

// Trigger selects which evaluations of an armed site fire.
type Trigger struct{ t trigger }

// Always fires on every evaluation.
func Always() Trigger { return Trigger{trigger{kind: triggerAlways}} }

// AfterN fires on every evaluation after the first n (hit n+1 onward).
func AfterN(n uint64) Trigger { return Trigger{trigger{kind: triggerAfterN, n: n}} }

// Prob fires each evaluation independently with probability p, drawn
// from a SplitMix64 stream seeded with seed — the same seed always fires
// the same subset of hits.
func Prob(p float64, seed uint64) Trigger {
	return Trigger{trigger{kind: triggerProb, p: p, src: rng.New(seed)}}
}

// failpoint is one armed site.
type failpoint struct {
	trig   trigger
	action Action
	hits   uint64
	fires  uint64
}

func (f *failpoint) eval() (Action, bool) {
	f.hits++
	fire := false
	switch f.trig.kind {
	case triggerAlways:
		fire = true
	case triggerAfterN:
		fire = f.hits > f.trig.n
	case triggerProb:
		fire = f.trig.src.Float64() < f.trig.p
	}
	if fire {
		f.fires++
	}
	return f.action, fire
}

var (
	mu sync.Mutex
	// sites maps name to failpoint (guarded by mu).
	sites map[string]*failpoint

	// armed counts armed sites; Inject's fast path reads it without the
	// lock so disarmed builds pay a single atomic load per site.
	armed atomic.Int64
)

// Arm configures the named site to fire per t, running action when it
// does (nil action returns ErrInjected). Re-arming replaces the previous
// configuration and zeroes the site's counters.
func Arm(name string, t Trigger, action Action) {
	if action == nil {
		action = ErrAction(fmt.Errorf("%w at %s", ErrInjected, name))
	}
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*failpoint)
	}
	if _, exists := sites[name]; !exists {
		armed.Add(1)
	}
	sites[name] = &failpoint{trig: t.t, action: action}
}

// Disarm removes the named site; subsequent Injects are no-ops.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := sites[name]; exists {
		delete(sites, name)
		armed.Add(-1)
	}
}

// Reset disarms every site. Tests arm failpoints and Reset in cleanup.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int64(len(sites)))
	sites = nil
}

// Counts reports how many times the named site was evaluated and how
// many of those evaluations fired. Zero for unarmed sites.
func Counts(name string) (hits, fires uint64) {
	mu.Lock()
	defer mu.Unlock()
	if f, ok := sites[name]; ok {
		return f.hits, f.fires
	}
	return 0, 0
}

// Enabled reports whether any site is armed — callers with expensive
// site setup can skip it entirely in production.
func Enabled() bool { return armed.Load() != 0 }

// Inject evaluates the named site with a background context.
//
//lint:ignore CTX01 convenience entry for ctx-free call sites; failpoint triggers never consult the ctx, only sleep actions do
func Inject(name string) error { return InjectCtx(context.Background(), name) }

// InjectCtx evaluates the named site: if it is armed and its trigger
// fires, the configured action runs and its error is returned. Disarmed
// sites return nil after one atomic load.
func InjectCtx(ctx context.Context, name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	f, ok := sites[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	action, fire := f.eval()
	mu.Unlock()
	if !fire {
		return nil
	}
	// The action runs outside the registry lock: stall actions must not
	// serialize unrelated sites (or Disarm) behind them.
	return action(ctx)
}
