package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// BENCH_load.json schema (validated by bionav-benchcheck): JSON Lines,
// one object per line. The first line is a header carrying the schema
// marker and the run parameters; each sweep step is a "step" record; the
// final line is the "knee" record. All durations are milliseconds.
const SchemaLoadV1 = "bionav-load/v1"

type reportHeader struct {
	Schema         string  `json:"schema"`
	Seed           uint64  `json:"seed"`
	QueryPool      int     `json:"queryPool"`
	ZipfSkew       float64 `json:"zipfSkew"`
	Actions        int     `json:"actions"`
	ThinkMs        float64 `json:"thinkMs"`
	StepDurationMs float64 `json:"stepDurationMs"`
	Steps          int     `json:"steps"`
	SLOp99Ms       float64 `json:"sloP99Ms"`
	MaxShedRate    float64 `json:"maxShedRate"`
}

type reportClient struct {
	P50Ms       float64 `json:"p50Ms"`
	P95Ms       float64 `json:"p95Ms"`
	P99Ms       float64 `json:"p99Ms"`
	P999Ms      float64 `json:"p999Ms"`
	MaxMs       float64 `json:"maxMs"`
	MeanMs      float64 `json:"meanMs"`
	AchievedRps float64 `json:"achievedRps"`
}

type reportServer struct {
	APIRequests float64 `json:"apiRequests"`
	Shed        float64 `json:"shed"`
	Degraded    float64 `json:"degraded"`
	Timeouts    float64 `json:"timeouts"`
	P99Ms       float64 `json:"p99Ms"`
}

type reportStep struct {
	Record      string       `json:"record"` // "step"
	Step        int          `json:"step"`
	OfferedRate float64      `json:"offeredRate"`
	Sessions    int          `json:"sessions"`
	Aborted     int          `json:"aborted"`
	ElapsedMs   float64      `json:"elapsedMs"`
	Requests    Counts       `json:"requests"`
	Client      reportClient `json:"client"`
	Server      reportServer `json:"server"`
}

type reportKnee struct {
	Record   string  `json:"record"` // "knee"
	Found    bool    `json:"found"`
	Step     int     `json:"step"`
	Rate     float64 `json:"rate"`
	P99Ms    float64 `json:"p99Ms"`
	ShedRate float64 `json:"shedRate"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteReport renders a sweep as BENCH_load.json lines.
func (r *Runner) WriteReport(w io.Writer, sc SweepConfig, rep *SweepReport) error {
	sc.fill()
	enc := json.NewEncoder(w)
	head := reportHeader{
		Schema:         SchemaLoadV1,
		Seed:           r.cfg.Seed,
		QueryPool:      len(r.cfg.Queries),
		ZipfSkew:       r.cfg.ZipfSkew,
		Actions:        r.cfg.Actions,
		ThinkMs:        ms(r.cfg.Think),
		StepDurationMs: ms(r.cfg.StepDuration),
		Steps:          len(rep.Steps),
		SLOp99Ms:       ms(sc.SLOp99),
		MaxShedRate:    sc.MaxShedRate,
	}
	if err := enc.Encode(head); err != nil {
		return fmt.Errorf("loadgen: write report header: %w", err)
	}
	for i := range rep.Steps {
		s := &rep.Steps[i]
		h := s.Result.Latency
		line := reportStep{
			Record:      "step",
			Step:        s.Step,
			OfferedRate: s.Result.OfferedRate,
			Sessions:    s.Result.Sessions,
			Aborted:     s.Result.Aborted,
			ElapsedMs:   ms(s.Result.Elapsed),
			Requests:    s.Result.Requests,
			Client: reportClient{
				P50Ms:       ms(h.Quantile(0.50)),
				P95Ms:       ms(h.Quantile(0.95)),
				P99Ms:       ms(h.Quantile(0.99)),
				P999Ms:      ms(h.Quantile(0.999)),
				MaxMs:       ms(h.Max()),
				MeanMs:      ms(h.Mean()),
				AchievedRps: s.Result.AchievedRPS(),
			},
			Server: reportServer{
				APIRequests: s.Server.APIRequests,
				Shed:        s.Server.Shed,
				Degraded:    s.Server.Degraded,
				Timeouts:    s.Server.Timeouts,
				P99Ms:       ms(s.Server.P99),
			},
		}
		if err := enc.Encode(line); err != nil {
			return fmt.Errorf("loadgen: write step %d: %w", s.Step, err)
		}
	}
	knee := reportKnee{
		Record:   "knee",
		Found:    rep.Knee.Found,
		Step:     rep.Knee.Step,
		Rate:     rep.Knee.Rate,
		P99Ms:    ms(rep.Knee.P99),
		ShedRate: rep.Knee.ShedRate,
	}
	if err := enc.Encode(knee); err != nil {
		return fmt.Errorf("loadgen: write knee: %w", err)
	}
	return nil
}
