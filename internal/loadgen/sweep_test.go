package loadgen

import (
	"testing"
	"time"
)

// step fabricates a StepReport at the given offered rate whose histogram
// holds one sample per request, all at latency lat.
func step(t *testing.T, n int, rate float64, lat time.Duration, counts Counts) StepReport {
	t.Helper()
	h := &Hist{}
	for i := uint64(0); i < counts.Total; i++ {
		h.Record(lat)
	}
	return StepReport{
		Step:   n,
		Result: &StepResult{OfferedRate: rate, Requests: counts, Latency: h},
	}
}

func TestFindKneeDisqualifiesErrorsAndShed(t *testing.T) {
	sc := SweepConfig{SLOp99: 100 * time.Millisecond, MaxShedRate: 0.01}
	sc.fill()
	ms := time.Millisecond

	steps := []StepReport{
		step(t, 0, 2, 5*ms, Counts{Total: 100, OK: 100}),
		// Fast failures keep p99 flattering; the error rate must still
		// disqualify the step (and likewise timeouts).
		step(t, 1, 4, 1*ms, Counts{Total: 100, OK: 40, Error: 60}),
		step(t, 2, 8, 1*ms, Counts{Total: 100, OK: 50, Timeout: 50}),
	}
	knee := findKnee(steps, sc)
	if !knee.Found || knee.Step != 0 {
		t.Fatalf("knee = %+v, want step 0 (error/timeout steps disqualified)", knee)
	}

	// Shed over the ceiling disqualifies; at or under it does not.
	steps = []StepReport{
		step(t, 0, 2, 5*ms, Counts{Total: 100, OK: 99, Shed: 1}),
		step(t, 1, 4, 5*ms, Counts{Total: 100, OK: 90, Shed: 10}),
	}
	knee = findKnee(steps, sc)
	if !knee.Found || knee.Step != 0 || knee.ShedRate != 0.01 {
		t.Fatalf("knee = %+v, want step 0 at shed rate 0.01", knee)
	}

	// p99 over SLO disqualifies; an all-failing sweep finds no knee.
	steps = []StepReport{
		step(t, 0, 2, 200*ms, Counts{Total: 100, OK: 100}),
		step(t, 1, 4, 1*ms, Counts{Total: 100, Error: 100}),
	}
	if knee = findKnee(steps, sc); knee.Found {
		t.Fatalf("knee = %+v, want none found", knee)
	}
}
