// Package loadgen is the closed-loop load harness for the bionav server:
// it drives the real HTTP API with simulated TOPDOWN users arriving in an
// open-loop Poisson process, measures per-request latency into an
// HDR-style histogram, and classifies every response (ok / degraded /
// shed / timeout / error) against the server's overload contract.
//
// The arrival process is open-loop on purpose: sessions are launched on
// the offered schedule whether or not earlier requests have completed, so
// a slow server accumulates concurrency instead of silently throttling
// the generator — the coordinated-omission trap a purely closed-loop
// driver falls into (docs/LOADGEN.md). Within a session the user is
// closed-loop, as real users are: each action waits for the previous
// response plus a think time.
//
// Determinism discipline (DET01): the package never reads the wall clock
// or math/rand. Time comes from an injected Clock and randomness from
// internal/rng sources derived from (seed, step, session index), so a
// session's action trace is reproducible independent of scheduling.
package loadgen

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bionav/internal/rng"
)

// Clock abstracts wall time for the harness. Package main injects the
// real clock; tests may substitute their own.
type Clock interface {
	Now() time.Time
	// Sleep pauses for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// Config tunes the simulated workload.
type Config struct {
	Seed         uint64        // master seed; every session's stream derives from it
	Queries      []string      // keyword pool, popularity-ranked (index 0 most popular)
	ZipfSkew     float64       // query-popularity skew (default 1.07, web-like)
	Actions      int           // post-query actions per session (default 6)
	Think        time.Duration // mean think time between actions (default 200ms)
	StepDuration time.Duration // how long a step launches new sessions (default 2s)
	SessionGrace time.Duration // extra time in-flight sessions get to finish (default 15s)
}

func (c *Config) fill() error {
	if len(c.Queries) == 0 {
		return fmt.Errorf("loadgen: no queries in pool")
	}
	if c.ZipfSkew <= 0 {
		c.ZipfSkew = 1.07
	}
	if c.Actions <= 0 {
		c.Actions = 6
	}
	if c.Think <= 0 {
		c.Think = 200 * time.Millisecond
	}
	if c.StepDuration <= 0 {
		c.StepDuration = 2 * time.Second
	}
	if c.SessionGrace <= 0 {
		c.SessionGrace = 15 * time.Second
	}
	return nil
}

// Counts is the outcome accounting of a run: every request lands in
// exactly one bucket.
type Counts struct {
	Total    uint64 `json:"total"`
	OK       uint64 `json:"ok"`
	Degraded uint64 `json:"degraded"`
	Shed     uint64 `json:"shed"`
	Timeout  uint64 `json:"timeout"`
	Error    uint64 `json:"error"`
}

// collector aggregates one step's measurements; all fields are safe for
// concurrent update from every session goroutine.
type collector struct {
	hist     Hist
	outcomes [numOutcomes]atomic.Uint64
	aborted  atomic.Uint64
}

func (c *collector) record(call Call) {
	c.hist.Record(call.Latency)
	c.outcomes[call.Outcome].Add(1)
}

func (c *collector) counts() Counts {
	n := Counts{
		OK:       c.outcomes[OutcomeOK].Load(),
		Degraded: c.outcomes[OutcomeDegraded].Load(),
		Shed:     c.outcomes[OutcomeShed].Load(),
		Timeout:  c.outcomes[OutcomeTimeout].Load(),
		Error:    c.outcomes[OutcomeError].Load(),
	}
	n.Total = n.OK + n.Degraded + n.Shed + n.Timeout + n.Error
	return n
}

// StepResult is the client-side view of one offered-load step.
type StepResult struct {
	OfferedRate float64       // sessions/second offered
	Sessions    int           // sessions launched
	Aborted     int           // sessions cut short by shed/timeout/error
	Requests    Counts        // per-outcome request accounting
	Latency     *Hist         // merged request-latency histogram
	Elapsed     time.Duration // wall time from first launch to last completion
}

// AchievedRPS reports the measured request throughput of the step.
func (s *StepResult) AchievedRPS() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Requests.Total) / s.Elapsed.Seconds()
}

// Runner drives simulated users against one server.
type Runner struct {
	cfg    Config
	client *Client
	clock  Clock
	zipf   *rng.Zipf
}

// NewRunner validates the config and builds a runner.
func NewRunner(cfg Config, client *Client, clock Clock) (*Runner, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Runner{
		cfg:    cfg,
		client: client,
		clock:  clock,
		zipf:   rng.NewZipf(len(cfg.Queries), cfg.ZipfSkew),
	}, nil
}

// sessionSource derives the deterministic random stream of session idx of
// step: a pure function of (seed, step, idx), independent of scheduling.
func (r *Runner) sessionSource(step, idx int) *rng.Source {
	const golden = 0x9e3779b97f4a7c15
	return rng.New(r.cfg.Seed ^ uint64(step+1)*golden ^ uint64(idx+1)*0xd1b54a32d192ed03)
}

// RunStep offers rate sessions/second for the configured step duration:
// sessions launch on a Poisson schedule regardless of server speed, run
// their closed-loop action scripts concurrently, and the step returns
// once every launched session finishes (bounded by SessionGrace).
func (r *Runner) RunStep(ctx context.Context, step int, rate float64) (*StepResult, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive offered rate %v", rate)
	}
	col := &collector{}
	arrivals := r.sessionSource(step, -1) // the arrival process has its own stream
	start := r.clock.Now()
	stop := start.Add(r.cfg.StepDuration)

	// Sessions run under a deadline past the launch window so a saturated
	// server cannot stall the step forever; the harness still observes the
	// slow responses as timeouts rather than omitting them.
	sctx, cancel := context.WithDeadline(ctx, stop.Add(r.cfg.SessionGrace))
	defer cancel()

	var wg sync.WaitGroup
	launched := 0
	for {
		gap := time.Duration(arrivals.ExpFloat64() / rate * float64(time.Second))
		if err := r.clock.Sleep(ctx, gap); err != nil {
			break
		}
		if !r.clock.Now().Before(stop) {
			break
		}
		idx := launched
		launched++
		wg.Add(1)
		go func() {
			defer wg.Done()
			u := r.newUser(r.sessionSource(step, idx))
			if aborted := u.run(sctx, col, nil); aborted {
				col.aborted.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := r.clock.Now().Sub(start)

	res := &StepResult{
		OfferedRate: rate,
		Sessions:    launched,
		Aborted:     int(col.aborted.Load()),
		Requests:    col.counts(),
		Latency:     &col.hist,
		Elapsed:     elapsed,
	}
	if err := ctx.Err(); err != nil && launched == 0 {
		return res, fmt.Errorf("loadgen: step %d cancelled before first session: %w", step, err)
	}
	return res, nil
}

// SessionTrace runs a single simulated session synchronously and returns
// its action trace and request accounting — the determinism probe: equal
// sources against equal servers yield equal traces.
func (r *Runner) SessionTrace(ctx context.Context, src *rng.Source) ([]string, Counts) {
	col := &collector{}
	var trace []string
	u := r.newUser(src)
	u.run(ctx, col, &trace)
	return trace, col.counts()
}

// SessionSource exposes the per-(step, idx) stream derivation so tests
// and callers can replay exactly the session the runner would launch.
func (r *Runner) SessionSource(step, idx int) *rng.Source {
	return r.sessionSource(step, idx)
}
