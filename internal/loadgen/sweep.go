package loadgen

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"bionav/internal/obs"
)

// SweepConfig drives a capacity sweep: geometrically stepped offered
// load, with the knee judged against a p99 SLO and a shed-rate ceiling.
type SweepConfig struct {
	BaseRate    float64       // sessions/second of the first step (default 2)
	Factor      float64       // offered-rate multiplier per step (default 2)
	Steps       int           // number of steps (default 3)
	SLOp99      time.Duration // client p99 a sustainable step must stay under (default 500ms)
	MaxShedRate float64       // shed fraction a sustainable step may reach (default 0.01)
}

func (c *SweepConfig) fill() {
	if c.BaseRate <= 0 {
		c.BaseRate = 2
	}
	if c.Factor <= 1 {
		c.Factor = 2
	}
	if c.Steps <= 0 {
		c.Steps = 3
	}
	if c.SLOp99 <= 0 {
		c.SLOp99 = 500 * time.Millisecond
	}
	if c.MaxShedRate <= 0 {
		c.MaxShedRate = 0.01
	}
}

// ServerDeltas is the server-side view of one step: counter increments
// between the /metrics scrapes bracketing it.
type ServerDeltas struct {
	APIRequests float64       // bionav_http_requests_total over /api/ routes
	Shed        float64       // bionav_requests_shed_total
	Degraded    float64       // bionav_expand_degraded_total
	Timeouts    float64       // bionav_expand_timeouts_total
	P99         time.Duration // bionav_http_request_seconds interval p99 (0 when no samples)
}

// StepReport pairs the client-side measurements of a step with the
// matching server-side counter deltas.
type StepReport struct {
	Step   int
	Result *StepResult
	Server ServerDeltas
}

// ShedRate is the shed fraction of the step's requests (0 for an idle step).
func (s *StepReport) ShedRate() float64 {
	if s.Result.Requests.Total == 0 {
		return 0
	}
	return float64(s.Result.Requests.Shed) / float64(s.Result.Requests.Total)
}

// ErrorRate is the fraction of the step's requests that ended in a hard
// failure: errors plus timeouts. Shed and degraded responses are the
// server behaving as designed and are judged separately.
func (s *StepReport) ErrorRate() float64 {
	if s.Result.Requests.Total == 0 {
		return 0
	}
	return float64(s.Result.Requests.Error+s.Result.Requests.Timeout) / float64(s.Result.Requests.Total)
}

// Knee is the detected capacity point: the highest offered rate whose
// step met the SLO. Found is false when even the first step missed it.
type Knee struct {
	Found    bool
	Step     int
	Rate     float64
	P99      time.Duration
	ShedRate float64
}

// SweepReport is a full capacity sweep.
type SweepReport struct {
	Steps []StepReport
	Knee  Knee
}

// Sweep runs cfg.Steps offered-load steps, scraping /metrics around each
// so every step report carries both sides of the measurement, and
// detects the knee.
func (r *Runner) Sweep(ctx context.Context, sc SweepConfig) (*SweepReport, error) {
	sc.fill()
	rep := &SweepReport{}
	rate := sc.BaseRate
	for step := 0; step < sc.Steps; step++ {
		before, err := r.client.Scrape(ctx, "/metrics")
		if err != nil {
			return nil, fmt.Errorf("loadgen: sweep step %d: %w", step, err)
		}
		res, err := r.RunStep(ctx, step, rate)
		if err != nil {
			return nil, err
		}
		after, err := r.client.Scrape(ctx, "/metrics")
		if err != nil {
			return nil, fmt.Errorf("loadgen: sweep step %d: %w", step, err)
		}
		rep.Steps = append(rep.Steps, StepReport{
			Step:   step,
			Result: res,
			Server: serverDeltas(after.Delta(before)),
		})
		rate *= sc.Factor
	}
	rep.Knee = findKnee(rep.Steps, sc)
	return rep, nil
}

// serverDeltas extracts the step's server-side accounting from a scrape
// delta.
func serverDeltas(d *obs.MetricsSnapshot) ServerDeltas {
	out := ServerDeltas{
		Shed:     d.Total("bionav_requests_shed_total"),
		Degraded: d.Total("bionav_expand_degraded_total"),
		Timeouts: d.Total("bionav_expand_timeouts_total"),
	}
	for _, s := range d.Series("bionav_http_requests_total") {
		if strings.HasPrefix(s.Labels["route"], "/api/") {
			out.APIRequests += s.Value
		}
	}
	// Interval p99 over the /api/ routes only — the probe and scrape
	// traffic the harness itself generates must not dilute the estimate.
	byLe := make(map[float64]float64)
	for _, s := range d.Series("bionav_http_request_seconds_bucket") {
		if !strings.HasPrefix(s.Labels["route"], "/api/") {
			continue
		}
		if le, err := strconv.ParseFloat(s.Labels["le"], 64); err == nil {
			byLe[le] += s.Value
		}
	}
	buckets := make([]obs.Bucket, 0, len(byLe))
	for le, count := range byLe {
		buckets = append(buckets, obs.Bucket{Upper: le, Count: count})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Upper < buckets[j].Upper })
	if p99 := obs.BucketQuantile(0.99, buckets); !math.IsNaN(p99) && !math.IsInf(p99, 0) {
		out.P99 = time.Duration(p99 * float64(time.Second))
	}
	return out
}

// findKnee returns the highest-rate step meeting the SLO criteria.
// Steps are offered in ascending rate, so the scan keeps the last pass.
// Errors and timeouts disqualify a step under the same ceiling as shed:
// a step whose requests failed outright is not demonstrated capacity,
// even if the (fast) failures kept p99 flattering.
func findKnee(steps []StepReport, sc SweepConfig) Knee {
	knee := Knee{}
	for i := range steps {
		s := &steps[i]
		p99 := s.Result.Latency.Quantile(0.99)
		if s.Result.Requests.Total == 0 || p99 > sc.SLOp99 ||
			s.ShedRate() > sc.MaxShedRate || s.ErrorRate() > sc.MaxShedRate {
			continue
		}
		knee = Knee{
			Found:    true,
			Step:     s.Step,
			Rate:     s.Result.OfferedRate,
			P99:      p99,
			ShedRate: s.ShedRate(),
		}
	}
	return knee
}
