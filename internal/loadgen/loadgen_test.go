package loadgen_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bionav/internal/corpus"
	"bionav/internal/hierarchy"
	"bionav/internal/index"
	"bionav/internal/loadgen"
	"bionav/internal/rng"
	"bionav/internal/server"
	"bionav/internal/store"
)

// realClock is the wall clock; only tests and package main may use it
// (the library takes it injected, per DET01).
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// testTarget boots a real server over a small deterministic dataset and
// returns a runner aimed at it.
func testTarget(t *testing.T, scfg server.Config, lcfg loadgen.Config) (*server.Server, *loadgen.Runner) {
	t.Helper()
	tree := hierarchy.Generate(hierarchy.GenConfig{Seed: 71, Nodes: 1000, TopLevel: 12, MaxDepth: 8})
	corp := corpus.Generate(tree, corpus.GenConfig{
		Seed: 72, Citations: 300, MeanConcepts: 30, FirstID: 500, YearLo: 2000, YearHi: 2008,
	})
	ds := &store.Dataset{Tree: tree, Corpus: corp, Index: index.Build(corp)}
	if scfg.MaxSessions == 0 {
		scfg.MaxSessions = 10000 // LRU eviction mid-run would read as spurious 404s
	}
	srv := server.New(ds, scfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	if len(lcfg.Queries) == 0 {
		// A popularity-ranked pool of real index terms.
		for i := 0; i < 5; i++ {
			lcfg.Queries = append(lcfg.Queries, corp.At(i).Terms[0])
		}
	}
	r, err := loadgen.NewRunner(lcfg, loadgen.NewClient(ts.URL, nil, realClock{}), realClock{})
	if err != nil {
		t.Fatal(err)
	}
	return srv, r
}

func smokeConfig() loadgen.Config {
	return loadgen.Config{
		Seed:         42,
		Actions:      4,
		Think:        2 * time.Millisecond,
		StepDuration: 300 * time.Millisecond,
		SessionGrace: 10 * time.Second,
	}
}

// TestLoadgenSmoke is the `make load-test` gate: a fixed-seed open-loop
// step against an in-process server must complete with successful
// requests and no unexpected failures.
func TestLoadgenSmoke(t *testing.T) {
	_, r := testTarget(t, server.Config{}, smokeConfig())
	res, err := r.RunStep(context.Background(), 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions == 0 {
		t.Fatal("no sessions launched")
	}
	if res.Requests.OK == 0 {
		t.Fatalf("no successful requests: %+v", res.Requests)
	}
	if res.Requests.Error != 0 || res.Requests.Timeout != 0 {
		t.Fatalf("unexpected failures: %+v", res.Requests)
	}
	if got := res.Latency.Count(); got != res.Requests.Total {
		t.Fatalf("histogram holds %d observations, counted %d requests", got, res.Requests.Total)
	}
	if res.AchievedRPS() <= 0 {
		t.Fatalf("achieved rps = %v", res.AchievedRPS())
	}
}

// TestSessionTraceDeterminism pins DET01 end to end: the same seed yields
// the same action trace, request for request, run after run.
func TestSessionTraceDeterminism(t *testing.T) {
	_, r := testTarget(t, server.Config{}, smokeConfig())
	ctx := context.Background()
	first, counts := r.SessionTrace(ctx, rng.New(7))
	if counts.Error != 0 || counts.OK == 0 {
		t.Fatalf("trace session failed: %+v\n%v", counts, first)
	}
	for i := 0; i < 2; i++ {
		again, _ := r.SessionTrace(ctx, rng.New(7))
		if strings.Join(again, "\n") != strings.Join(first, "\n") {
			t.Fatalf("trace diverged on rerun %d:\n%v\nvs\n%v", i, first, again)
		}
	}
	// A different seed must explore differently — otherwise the "trace" is
	// insensitive to the stream and the determinism check above is vacuous.
	other, _ := r.SessionTrace(ctx, rng.New(1234))
	if strings.Join(other, "\n") == strings.Join(first, "\n") {
		t.Fatal("different seeds produced identical traces")
	}
	// The runner's per-(step, idx) derivation is itself stable.
	a, b := r.SessionSource(3, 17), r.SessionSource(3, 17)
	if a.Uint64() != b.Uint64() {
		t.Fatal("SessionSource not deterministic")
	}
}

// TestSweepCrossChecksServer runs a small sweep and verifies the two
// sides of the measurement agree: the server's /api/ request-counter
// delta equals the client's request total whenever no client-side
// timeout abandoned a request mid-flight.
func TestSweepCrossChecksServer(t *testing.T) {
	cfg := smokeConfig()
	cfg.StepDuration = 200 * time.Millisecond
	_, r := testTarget(t, server.Config{}, cfg)
	rep, err := r.Sweep(context.Background(), loadgen.SweepConfig{
		BaseRate: 15, Factor: 2, Steps: 2,
		SLOp99: 10 * time.Second, MaxShedRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 2 {
		t.Fatalf("got %d steps", len(rep.Steps))
	}
	for _, s := range rep.Steps {
		if s.Result.Requests.Timeout != 0 {
			continue // an abandoned request may or may not have been served
		}
		if got, want := s.Server.APIRequests, float64(s.Result.Requests.Total); got != want {
			t.Errorf("step %d: server saw %v /api/ requests, client sent %v", s.Step, got, want)
		}
	}
	if !rep.Knee.Found || rep.Knee.Step != 1 {
		t.Errorf("knee = %+v, want the last step under a 10s SLO", rep.Knee)
	}

	var out strings.Builder
	if err := r.WriteReport(&out, loadgen.SweepConfig{SLOp99: 10 * time.Second, MaxShedRate: 1}, rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1+2+1 {
		t.Fatalf("report has %d lines, want header + 2 steps + knee:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], `"schema":"bionav-load/v1"`) {
		t.Fatalf("missing schema marker: %s", lines[0])
	}
}

// TestLoadgenDrainShed pins the drain contract from the client side: a
// step offered to a draining server is fully shed — every response is a
// 503 with Retry-After, classified as shed, never as error.
func TestLoadgenDrainShed(t *testing.T) {
	cfg := smokeConfig()
	cfg.StepDuration = 150 * time.Millisecond
	srv, r := testTarget(t, server.Config{}, cfg)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunStep(context.Background(), 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests.Total == 0 {
		t.Fatal("no requests issued")
	}
	if res.Requests.Shed != res.Requests.Total {
		t.Fatalf("draining server: %+v, want every request shed", res.Requests)
	}
	if res.Requests.Error != 0 {
		t.Fatalf("drain responses misclassified as errors: %+v", res.Requests)
	}
	if res.Aborted != res.Sessions {
		t.Fatalf("aborted %d of %d sessions, want all", res.Aborted, res.Sessions)
	}
}
