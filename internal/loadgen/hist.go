package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is an HDR-style latency histogram: log-bucketed with 32 linear
// sub-buckets per power-of-two octave, so any recorded value is off by at
// most 1/32 (~3.1%) of itself. All methods are safe for concurrent use —
// every simulated user records into one shared Hist without locking.
//
// Unlike the fixed-boundary obs.Histogram (sized for a Prometheus
// exposition), Hist covers nanoseconds to hours at uniform relative error,
// which is what exact client-side p99/p99.9 extraction needs.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	sumNs  atomic.Uint64
	maxNs  atomic.Uint64
}

const (
	histSubBits = 5 // 2^5 = 32 linear sub-buckets per octave
	histSub     = 1 << histSubBits
	// Values 0..31 get exact buckets; octaves 5..62 get 32 each. 63-bit
	// nanosecond durations (≈292 years) never overflow the index.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// histIndex maps a non-negative nanosecond value to its bucket.
func histIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the top bit, >= histSubBits
	sub := (v >> (uint(exp) - histSubBits)) & (histSub - 1)
	return (exp-histSubBits+1)*histSub + int(sub)
}

// histUpper is the inclusive upper bound of bucket i, the value Quantile
// reports for ranks landing in it.
func histUpper(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := uint(i/histSub) - 1 + histSubBits
	sub := uint64(i % histSub)
	return 1<<exp + (sub+1)<<(exp-histSubBits) - 1
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Hist) Record(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[histIndex(ns)].Add(1)
	h.total.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count reports the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Max reports the largest recorded observation exactly.
func (h *Hist) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Mean reports the arithmetic mean of the recorded observations, 0 when
// empty.
func (h *Hist) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Quantile reports the q-quantile (0 < q <= 1) as the upper bound of the
// bucket holding the ceil(q*n)-th observation — within 3.1% of the true
// value. Returns 0 for an empty histogram.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 || q <= 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank > n {
		rank = n
	}
	seen := uint64(0)
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(histUpper(i))
		}
	}
	return h.Max()
}

// Merge adds other's observations into h. Concurrent Records on either
// side may or may not be included; merge quiesced histograms for exact
// totals.
func (h *Hist) Merge(other *Hist) {
	for i := range other.counts {
		if c := other.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(other.total.Load())
	h.sumNs.Add(other.sumNs.Load())
	for {
		cur, om := h.maxNs.Load(), other.maxNs.Load()
		if om <= cur || h.maxNs.CompareAndSwap(cur, om) {
			return
		}
	}
}
