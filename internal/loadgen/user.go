package loadgen

import (
	"context"
	"strconv"
	"time"

	"bionav/internal/rng"
)

// user is one simulated TOPDOWN navigator (the paper's §VIII user model
// as a client): open a keyword query, then alternate think time with a
// mixed action script — mostly drilling down with EXPAND into heavy
// components, occasionally listing results, dismissing a concept, or
// backtracking. Every decision draws from the session's own rng stream,
// and candidate actions are gated by the visible tree the server just
// returned, so the user never issues a structurally invalid request — a
// 422 therefore counts as a real error, not user noise.
type user struct {
	r   *Runner
	src *rng.Source
}

func (r *Runner) newUser(src *rng.Source) *user { return &user{r: r, src: src} }

// Action mix weights, normalized over the actions currently valid.
const (
	weightExpand      = 50
	weightShowResults = 25
	weightBacktrack   = 15
	weightIgnore      = 10
)

type actionKind int

const (
	actNone actionKind = iota
	actExpand
	actShowResults
	actIgnore
	actBacktrack
)

// run plays the session script, recording every request into col and, when
// trace is non-nil, appending one line per decision. It reports whether
// the session aborted (shed, timeout, transport error, or cancellation)
// rather than running its script to completion.
func (u *user) run(ctx context.Context, col *collector, trace *[]string) bool {
	kw := u.r.cfg.Queries[u.r.zipf.Next(u.src)]
	note(trace, "query:"+kw)
	call := u.r.client.Query(ctx, kw)
	col.record(call)
	if call.State == nil {
		note(trace, "abort:"+call.Outcome.String())
		return true
	}
	st := call.State
	depth := 0 // EXPANDs minus BACKTRACKs: how much history is undoable
	for i := 0; i < u.r.cfg.Actions; i++ {
		think := time.Duration(u.src.ExpFloat64() * float64(u.r.cfg.Think))
		if err := u.r.clock.Sleep(ctx, think); err != nil {
			note(trace, "abort:cancelled")
			return true
		}
		kind, node := u.choose(st, depth)
		var c Call
		switch kind {
		case actExpand:
			note(trace, "expand:"+strconv.Itoa(node))
			c = u.r.client.Expand(ctx, st.Session, node)
		case actShowResults:
			note(trace, "showresults:"+strconv.Itoa(node))
			c = u.r.client.ShowResults(ctx, st.Session, node)
		case actIgnore:
			note(trace, "ignore:"+strconv.Itoa(node))
			c = u.r.client.Ignore(ctx, st.Session, node)
		case actBacktrack:
			note(trace, "backtrack")
			c = u.r.client.Backtrack(ctx, st.Session)
		default:
			note(trace, "done:exhausted")
			return false
		}
		col.record(c)
		if c.Outcome != OutcomeOK && c.Outcome != OutcomeDegraded {
			note(trace, "abort:"+c.Outcome.String())
			return true
		}
		if c.State != nil {
			// ShowResults returns a listing, not a state; keep steering by
			// the last tree in that case.
			st = c.State
		}
		switch kind {
		case actExpand:
			depth++
		case actBacktrack:
			depth--
		}
	}
	note(trace, "done:actions")
	return false
}

// choose picks the next action and its target from the visible tree.
// Weights renormalize over the currently valid actions; actNone means the
// navigation is exhausted (nothing expandable and nothing to undo).
func (u *user) choose(st *State, depth int) (actionKind, int) {
	visible := flatten(st.Tree)
	var expandable []Node
	for _, n := range visible {
		if n.Expandable {
			expandable = append(expandable, n)
		}
	}
	type cand struct {
		kind   actionKind
		weight int
	}
	var cands []cand
	if len(expandable) > 0 {
		cands = append(cands, cand{actExpand, weightExpand})
	}
	if len(visible) > 0 {
		cands = append(cands, cand{actShowResults, weightShowResults}, cand{actIgnore, weightIgnore})
	}
	if depth > 0 {
		cands = append(cands, cand{actBacktrack, weightBacktrack})
	}
	if len(cands) == 0 {
		return actNone, 0
	}
	total := 0
	for _, c := range cands {
		total += c.weight
	}
	pick := u.src.Intn(total)
	kind := actNone
	for _, c := range cands {
		if pick < c.weight {
			kind = c.kind
			break
		}
		pick -= c.weight
	}
	switch kind {
	case actExpand:
		// TOPDOWN users chase the heavy components: weight by result count.
		return actExpand, weightedByCount(u.src, expandable)
	case actShowResults:
		return actShowResults, weightedByCount(u.src, visible)
	case actIgnore:
		return actIgnore, visible[u.src.Intn(len(visible))].Node
	default:
		return kind, 0
	}
}

// flatten lists the visible tree in depth-first order — deterministic,
// since it follows the server's rendering order.
func flatten(root Node) []Node {
	out := []Node{root}
	for _, c := range root.Children {
		out = append(out, flatten(c)...)
	}
	return out
}

// weightedByCount picks a node with probability proportional to its
// result count (plus one, so empty nodes stay reachable).
func weightedByCount(src *rng.Source, nodes []Node) int {
	total := 0
	for _, n := range nodes {
		total += n.Count + 1
	}
	pick := src.Intn(total)
	for _, n := range nodes {
		if pick < n.Count+1 {
			return n.Node
		}
		pick -= n.Count + 1
	}
	return nodes[len(nodes)-1].Node
}

func note(trace *[]string, line string) {
	if trace != nil {
		*trace = append(*trace, line)
	}
}
