package loadgen

import (
	"sync"
	"testing"
	"time"
)

func TestHistIndexBounds(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the value
	// and within 1/32 relative error of it.
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 1000, 1 << 20, 123456789, 1 << 40, 1<<62 + 12345} {
		i := histIndex(v)
		up := histUpper(i)
		if up < v {
			t.Errorf("v=%d: bucket %d upper %d below the value", v, i, up)
		}
		if v >= 32 && float64(up-v) > float64(v)/32 {
			t.Errorf("v=%d: bucket upper %d off by more than 1/32", v, up)
		}
		if i > 0 && histUpper(i-1) >= v {
			t.Errorf("v=%d: previous bucket %d upper %d should be below the value", v, i-1, histUpper(i-1))
		}
	}
}

func TestHistQuantile(t *testing.T) {
	h := &Hist{}
	// 1..1000 microseconds: quantiles are predictable to 3.1%.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{1.0, 1000 * time.Microsecond},
	} {
		got := h.Quantile(c.q)
		if got < c.want || float64(got-c.want) > float64(c.want)/16 {
			t.Errorf("q=%v: got %v, want %v within 1/16", c.q, got, c.want)
		}
	}
	if h.Max() != 1000*time.Microsecond {
		t.Errorf("max = %v", h.Max())
	}
	if m := h.Mean(); m < 499*time.Microsecond || m > 502*time.Microsecond {
		t.Errorf("mean = %v, want ≈500µs", m)
	}
	if h.Quantile(0) != 0 || (&Hist{}).Quantile(0.5) != 0 {
		t.Error("empty/zero-q quantile must be 0")
	}
}

func TestHistMerge(t *testing.T) {
	a, b := &Hist{}, &Hist{}
	for i := 0; i < 100; i++ {
		a.Record(time.Millisecond)
		b.Record(time.Second)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if got := a.Quantile(0.25); got > 2*time.Millisecond {
		t.Errorf("q25 = %v, want ≈1ms", got)
	}
	if got := a.Quantile(0.99); got < time.Second {
		t.Errorf("q99 = %v, want >= 1s", got)
	}
	if a.Max() != time.Second {
		t.Errorf("merged max = %v", a.Max())
	}
}

// TestHistConcurrent proves the histogram loses no observations under
// concurrent recording (and is exercised by -race).
func TestHistConcurrent(t *testing.T) {
	h := &Hist{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}
