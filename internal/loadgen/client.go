package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"bionav/internal/obs"
)

// Outcome classifies one request from the client's side. The mapping pins
// the server's overload contract: a 503 only counts as shed when it
// carries Retry-After — a bare 503 is a bug, not backpressure.
type Outcome int

const (
	OutcomeOK       Outcome = iota // 2xx, full-quality response
	OutcomeDegraded                // 2xx with "degraded": true
	OutcomeShed                    // 503 + Retry-After (overload or drain)
	OutcomeTimeout                 // client-side deadline expired
	OutcomeError                   // anything else
	numOutcomes
)

// String names the outcome as it appears in reports.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeShed:
		return "shed"
	case OutcomeTimeout:
		return "timeout"
	default:
		return "error"
	}
}

// Node is the client's view of one navigation-tree node — the subset of
// the server's node rendering the user model steers by.
type Node struct {
	Node       int    `json:"node"`
	Label      string `json:"label"`
	Count      int    `json:"count"`
	Expandable bool   `json:"expandable"`
	Children   []Node `json:"children"`
}

// State is the client's view of a session state response.
type State struct {
	Session  string `json:"session"`
	Results  int    `json:"results"`
	Degraded bool   `json:"degraded"`
	Tree     Node   `json:"tree"`
}

// Call is the measured result of one request.
type Call struct {
	Outcome Outcome
	Latency time.Duration
	Status  int    // HTTP status; 0 when the request never completed
	State   *State // decoded body on OK/Degraded state responses
	Err     error  // classification detail for Timeout/Error
}

// Client speaks the bionav-server JSON API and classifies every response.
// Latency is measured around the full request–response cycle with the
// injected clock. Safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	clock Clock
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8080"). hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client, clock Clock) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc, clock: clock}
}

// do issues one request and classifies the result. wantState controls
// whether a 2xx body is decoded as a State.
func (c *Client) do(ctx context.Context, method, path string, body any, wantState bool) Call {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return Call{Outcome: OutcomeError, Err: fmt.Errorf("loadgen: encode request: %w", err)}
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return Call{Outcome: OutcomeError, Err: fmt.Errorf("loadgen: build request: %w", err)}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := c.clock.Now()
	resp, err := c.hc.Do(req)
	lat := c.clock.Now().Sub(start)
	if err != nil {
		return Call{Outcome: classifyErr(ctx, err), Latency: lat, Err: err}
	}
	defer resp.Body.Close()
	call := Call{Latency: lat, Status: resp.StatusCode}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		call.Outcome = OutcomeOK
		if wantState {
			st := &State{}
			if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
				call.Outcome = OutcomeError
				call.Err = fmt.Errorf("loadgen: decode state: %w", err)
				return call
			}
			call.State = st
			if st.Degraded {
				call.Outcome = OutcomeDegraded
			}
		} else {
			_, _ = io.Copy(io.Discard, resp.Body)
		}
	case resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
		call.Outcome = OutcomeShed
		_, _ = io.Copy(io.Discard, resp.Body)
	default:
		call.Outcome = OutcomeError
		call.Err = fmt.Errorf("loadgen: %s %s: %s", method, path, readError(resp.Body, resp.StatusCode))
	}
	return call
}

// classifyErr separates deadline expiry (an expected overload symptom the
// harness accounts for) from transport failure.
func classifyErr(ctx context.Context, err error) Outcome {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return OutcomeTimeout
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return OutcomeTimeout
	}
	return OutcomeError
}

// readError extracts the server's {"error": ...} message, falling back to
// the status code.
func readError(r io.Reader, status int) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(r, 4096)).Decode(&e); err == nil && e.Error != "" {
		return e.Error
	}
	return "HTTP " + strconv.Itoa(status)
}

// Query opens a session with a keyword query.
func (c *Client) Query(ctx context.Context, keywords string) Call {
	return c.do(ctx, http.MethodPost, "/api/query", map[string]string{"keywords": keywords}, true)
}

// Expand performs EXPAND on node.
func (c *Client) Expand(ctx context.Context, session string, node int) Call {
	return c.do(ctx, http.MethodPost, "/api/expand", actionBody(session, node), true)
}

// Ignore dismisses a visible node.
func (c *Client) Ignore(ctx context.Context, session string, node int) Call {
	return c.do(ctx, http.MethodPost, "/api/ignore", actionBody(session, node), true)
}

// Backtrack undoes the last EXPAND.
func (c *Client) Backtrack(ctx context.Context, session string) Call {
	return c.do(ctx, http.MethodPost, "/api/backtrack", actionBody(session, 0), true)
}

// ShowResults lists a node's citations; the body is drained, not decoded.
func (c *Client) ShowResults(ctx context.Context, session string, node int) Call {
	q := url.Values{"session": {session}, "node": {strconv.Itoa(node)}}
	return c.do(ctx, http.MethodGet, "/api/results?"+q.Encode(), nil, false)
}

// Scrape fetches and parses the Prometheus exposition at path (usually
// "/metrics").
func (c *Client) Scrape(ctx context.Context, path string) (*obs.MetricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("loadgen: build scrape: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape %s: HTTP %d", path, resp.StatusCode)
	}
	snap, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape %s: %w", path, err)
	}
	return snap, nil
}

func actionBody(session string, node int) map[string]any {
	return map[string]any{"session": session, "node": node}
}
