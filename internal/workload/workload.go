// Package workload synthesizes the experimental query workload of the
// paper's Table I: ten real PubMed keyword queries, each with a designated
// target concept "among the ones involved in the research fields closely
// related to the keyword query". Since MEDLINE itself is not available
// offline, the workload plants each query's result set into a synthetic
// corpus with the published characteristics as generation targets: result
// size, number of independent research areas, target-concept depth, target
// result count L(n), and target global count cnt(n).
package workload

import (
	"fmt"

	"bionav/internal/corpus"
	"bionav/internal/hierarchy"
	"bionav/internal/index"
	"bionav/internal/navtree"
	"bionav/internal/rng"
	"bionav/internal/store"
)

// QuerySpec describes one Table I row as generation targets.
type QuerySpec struct {
	Keyword      string // the PubMed query, e.g. "prothymosin"
	ResultSize   int    // # citations in the query result
	TargetLabel  string // Table I target concept, e.g. "Histones"
	TargetDepth  int    // MeSH level of the target concept
	TargetL      int    // L(n): target's citations within the query result
	TargetGlobal int64  // cnt(n): target's citations in all of MEDLINE
	FocusAreas   int    // independent research areas in the result set
	MeanConcepts int    // annotation density of the result citations
}

// TableI returns the paper's ten-query workload. Result sizes quoted in the
// paper's text (prothymosin 313, vardenafil 486) are exact; the remaining
// characteristics follow the paper's qualitative description — e.g. "ice
// nucleation" has a target high in the hierarchy with extremely low
// selectivity, "prothymosin" spans several research areas while
// "vardenafil" is narrowly targeted.
func TableI() []QuerySpec {
	return []QuerySpec{
		{Keyword: "LbetaT2", ResultSize: 211, TargetLabel: "Mice, Transgenic", TargetDepth: 3, TargetL: 48, TargetGlobal: 120000, FocusAreas: 3, MeanConcepts: 80},
		{Keyword: "melibiose permease", ResultSize: 67, TargetLabel: "Substrate Specificity", TargetDepth: 3, TargetL: 30, TargetGlobal: 45000, FocusAreas: 2, MeanConcepts: 70},
		{Keyword: "varenicline", ResultSize: 81, TargetLabel: "Nicotinic Agonists", TargetDepth: 5, TargetL: 25, TargetGlobal: 9000, FocusAreas: 2, MeanConcepts: 75},
		{Keyword: "Na+/I- symporter", ResultSize: 105, TargetLabel: "Perchloric Acid", TargetDepth: 5, TargetL: 16, TargetGlobal: 3000, FocusAreas: 3, MeanConcepts: 75},
		{Keyword: "prothymosin", ResultSize: 313, TargetLabel: "Histones", TargetDepth: 5, TargetL: 40, TargetGlobal: 24000, FocusAreas: 4, MeanConcepts: 90},
		{Keyword: "ice nucleation", ResultSize: 145, TargetLabel: "Plants, Genetically Modified", TargetDepth: 2, TargetL: 12, TargetGlobal: 2_500_000, FocusAreas: 3, MeanConcepts: 70},
		{Keyword: "vardenafil", ResultSize: 486, TargetLabel: "Phosphodiesterase Inhibitors", TargetDepth: 4, TargetL: 170, TargetGlobal: 30000, FocusAreas: 2, MeanConcepts: 65},
		{Keyword: "dyslexia genetics", ResultSize: 177, TargetLabel: "Polymorphism, Single Nucleotide", TargetDepth: 4, TargetL: 35, TargetGlobal: 55000, FocusAreas: 3, MeanConcepts: 80},
		{Keyword: "syntaxin 1A", ResultSize: 134, TargetLabel: "GABA Plasma Membrane Transport Proteins", TargetDepth: 6, TargetL: 12, TargetGlobal: 700, FocusAreas: 3, MeanConcepts: 85},
		{Keyword: "follistatin", ResultSize: 244, TargetLabel: "Follicle Stimulating Hormone", TargetDepth: 4, TargetL: 60, TargetGlobal: 28000, FocusAreas: 3, MeanConcepts: 80},
	}
}

// Query is one realized workload query.
type Query struct {
	Spec    QuerySpec
	Target  hierarchy.ConceptID
	Foci    []hierarchy.ConceptID // research-area focus concepts; Foci[0] == Target
	Results []corpus.CitationID   // the planted result set, in ID order
}

// Workload bundles the synthesized dataset with its realized queries.
type Workload struct {
	Dataset *store.Dataset
	Queries []Query
}

// Config controls workload synthesis.
type Config struct {
	Seed           uint64
	HierarchyNodes int // synthetic MeSH size (paper: 48,000)
	TopLevel       int // root fan-out (default 112, the MeSH subcategories)
	Background     int // non-result citations in the corpus
	Specs          []QuerySpec
}

// DefaultConfig returns the full-scale configuration used by the
// experiment binaries; tests shrink it.
func DefaultConfig() Config {
	return Config{Seed: 2009, HierarchyNodes: 48000, Background: 3000, Specs: TableI()}
}

// SmallConfig shrinks the workload for fast tests and smoke-scale load
// runs while keeping every Table I query: result sizes are quartered
// (floors keep each target plantable) and annotation density is reduced.
func SmallConfig() Config {
	specs := TableI()
	for i := range specs {
		specs[i].ResultSize = (specs[i].ResultSize + 3) / 4
		if specs[i].TargetL > specs[i].ResultSize {
			specs[i].TargetL = specs[i].ResultSize / 2
		}
		if specs[i].TargetL < 2 {
			specs[i].TargetL = 2
		}
		specs[i].MeanConcepts = 30
	}
	return Config{Seed: 2009, HierarchyNodes: 6000, Background: 200, Specs: specs}
}

// Generate synthesizes the workload. The same Config always produces the
// identical workload.
func Generate(cfg Config) (*Workload, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("workload: no query specs")
	}
	if cfg.TopLevel <= 0 {
		cfg.TopLevel = 112
	}
	src := rng.New(cfg.Seed)
	tree := hierarchy.Generate(hierarchy.GenConfig{
		Seed: cfg.Seed, Nodes: cfg.HierarchyNodes, TopLevel: cfg.TopLevel, MaxDepth: 11,
	})

	targets, err := chooseTargets(tree, cfg.Specs, src.Split())
	if err != nil {
		return nil, err
	}
	relabels := make(map[hierarchy.ConceptID]string, len(targets))
	for i, spec := range cfg.Specs {
		// The label vocabulary can organically produce a Table I label
		// (e.g. "Histones"); rename such an incumbent out of the way so
		// the target's label stays unique.
		if incumbent, ok := tree.ByLabel(spec.TargetLabel); ok && incumbent != targets[i] {
			relabels[incumbent] = spec.TargetLabel + " (General)"
		}
		relabels[targets[i]] = spec.TargetLabel
	}
	tree, err = hierarchy.Relabel(tree, relabels)
	if err != nil {
		return nil, fmt.Errorf("workload: relabel targets: %w", err)
	}

	reserved := reservedTokens(cfg.Specs)
	gen := &generator{
		tree:     tree,
		src:      src,
		ann:      corpus.NewAnnotator(tree, src.Split()),
		reserved: reserved,
		nextID:   10_000_000,
	}

	// Background citations: realistic noise the index must see through.
	for i := 0; i < cfg.Background; i++ {
		gen.background()
	}

	// Planted query results.
	queries := make([]Query, len(cfg.Specs))
	for i, spec := range cfg.Specs {
		ids, foci, err := gen.plantQuery(spec, targets[i])
		if err != nil {
			return nil, err
		}
		queries[i] = Query{Spec: spec, Target: targets[i], Foci: foci, Results: ids}
	}

	counts := corpus.SynthGlobalCounts(tree, src.Split())
	for i, spec := range cfg.Specs {
		counts[targets[i]] = spec.TargetGlobal
	}
	corp, err := corpus.New(tree, gen.citations, counts)
	if err != nil {
		return nil, fmt.Errorf("workload: assemble corpus: %w", err)
	}
	return &Workload{
		Dataset: &store.Dataset{Tree: tree, Corpus: corp, Index: index.Build(corp)},
		Queries: queries,
	}, nil
}

// QueryByKeyword finds a realized query.
func (w *Workload) QueryByKeyword(keyword string) (*Query, bool) {
	for i := range w.Queries {
		if w.Queries[i].Spec.Keyword == keyword {
			return &w.Queries[i], true
		}
	}
	return nil, false
}

// NavTree builds the navigation tree for one workload query by running the
// query through the search index (exactly the on-line pipeline of §VII).
func (w *Workload) NavTree(q *Query) (*navtree.Tree, navtree.NodeID, error) {
	results := w.Dataset.Index.Search(q.Spec.Keyword)
	nav := navtree.Build(w.Dataset.Corpus, results)
	target, ok := nav.NodeByConcept(q.Target)
	if !ok {
		return nil, 0, fmt.Errorf("workload: target %q not in navigation tree of %q",
			q.Spec.TargetLabel, q.Spec.Keyword)
	}
	return nav, target, nil
}

// chooseTargets picks one concept per spec at the requested depth, pairwise
// distinct and non-ancestral so the queries' research areas are independent.
func chooseTargets(tree *hierarchy.Tree, specs []QuerySpec, src *rng.Source) ([]hierarchy.ConceptID, error) {
	byDepth := make(map[int][]hierarchy.ConceptID)
	for i := 1; i < tree.Len(); i++ {
		id := hierarchy.ConceptID(i)
		byDepth[tree.Node(id).Depth] = append(byDepth[tree.Node(id).Depth], id)
	}
	chosen := make([]hierarchy.ConceptID, 0, len(specs))
	for _, spec := range specs {
		cands := byDepth[spec.TargetDepth]
		if len(cands) == 0 {
			return nil, fmt.Errorf("workload: no concepts at depth %d for %q (grow the hierarchy)",
				spec.TargetDepth, spec.Keyword)
		}
		found := false
		for attempt := 0; attempt < 4*len(cands) && !found; attempt++ {
			c := cands[src.Intn(len(cands))]
			ok := true
			for _, prev := range chosen {
				if prev == c || tree.IsAncestor(prev, c) || tree.IsAncestor(c, prev) {
					ok = false
					break
				}
			}
			if ok {
				chosen = append(chosen, c)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("workload: cannot place target for %q at depth %d", spec.Keyword, spec.TargetDepth)
		}
	}
	return chosen, nil
}

// reservedTokens collects every keyword token; background citations must
// not contain them, so each keyword query returns exactly its planted set.
func reservedTokens(specs []QuerySpec) map[string]struct{} {
	out := make(map[string]struct{})
	for _, s := range specs {
		for _, tok := range corpus.Tokenize(s.Keyword) {
			out[tok] = struct{}{}
		}
	}
	return out
}
