package workload

import (
	"path/filepath"
	"testing"
)

func TestWorkloadSaveLoadRoundTrip(t *testing.T) {
	w := genSmall(t)
	dir := filepath.Join(t.TempDir(), "db")
	if err := w.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Queries) != len(w.Queries) {
		t.Fatalf("queries: %d vs %d", len(got.Queries), len(w.Queries))
	}
	for i := range w.Queries {
		a, b := &w.Queries[i], &got.Queries[i]
		if a.Spec != b.Spec || a.Target != b.Target || len(a.Results) != len(b.Results) {
			t.Fatalf("query %d differs: %+v vs %+v", i, a.Spec, b.Spec)
		}
		if len(a.Foci) != len(b.Foci) {
			t.Fatalf("query %d foci differ: %v vs %v", i, a.Foci, b.Foci)
		}
		for j := range a.Foci {
			if a.Foci[j] != b.Foci[j] {
				t.Fatalf("query %d focus %d differs", i, j)
			}
		}
		for j := range a.Results {
			if a.Results[j] != b.Results[j] {
				t.Fatalf("query %d result %d differs", i, j)
			}
		}
	}
	// The reloaded workload must be fully usable: navigation trees resolve
	// targets and the index reproduces the planted result sets.
	for i := range got.Queries {
		q := &got.Queries[i]
		nav, target, err := got.NavTree(q)
		if err != nil {
			t.Fatalf("%q: %v", q.Spec.Keyword, err)
		}
		if nav.NumResults(target) != q.Spec.TargetL {
			t.Fatalf("%q: L(target) = %d after reload", q.Spec.Keyword, nav.NumResults(target))
		}
	}
}

func TestLoadRejectsPlainDataset(t *testing.T) {
	w := genSmall(t)
	dir := filepath.Join(t.TempDir(), "db")
	if err := w.Dataset.Save(dir); err != nil { // no sidecar
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("plain dataset accepted as workload")
	}
}

func TestLoadRejectsMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
}
