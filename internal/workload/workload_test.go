package workload

import (
	"testing"

	"bionav/internal/hierarchy"
)

func genSmall(t *testing.T) *Workload {
	t.Helper()
	w, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestTableIHasTenQueries(t *testing.T) {
	specs := TableI()
	if len(specs) != 10 {
		t.Fatalf("Table I has %d queries, want 10", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Keyword] {
			t.Fatalf("duplicate keyword %q", s.Keyword)
		}
		seen[s.Keyword] = true
		if s.ResultSize <= 0 || s.TargetL <= 0 || s.TargetL > s.ResultSize {
			t.Fatalf("bad spec %+v", s)
		}
		if s.TargetGlobal < int64(s.TargetL) {
			t.Fatalf("%q: global count below result count", s.Keyword)
		}
	}
	// The two result sizes quoted verbatim in the paper's prose.
	for _, want := range []struct {
		kw   string
		size int
	}{{"prothymosin", 313}, {"vardenafil", 486}} {
		found := false
		for _, s := range specs {
			if s.Keyword == want.kw && s.ResultSize == want.size {
				found = true
			}
		}
		if !found {
			t.Errorf("spec for %q with result size %d missing", want.kw, want.size)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := genSmall(t), genSmall(t)
	if a.Dataset.Corpus.Len() != b.Dataset.Corpus.Len() {
		t.Fatal("corpus sizes differ")
	}
	for i := range a.Queries {
		qa, qb := a.Queries[i], b.Queries[i]
		if qa.Target != qb.Target || len(qa.Results) != len(qb.Results) {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestSearchReturnsExactlyPlantedSet(t *testing.T) {
	w := genSmall(t)
	for _, q := range w.Queries {
		got := w.Dataset.Index.Search(q.Spec.Keyword)
		if len(got) != len(q.Results) {
			t.Errorf("%q: search returned %d citations, planted %d",
				q.Spec.Keyword, len(got), len(q.Results))
			continue
		}
		for i := range got {
			if got[i] != q.Results[i] {
				t.Errorf("%q: result %d is %d, want %d", q.Spec.Keyword, i, got[i], q.Results[i])
				break
			}
		}
	}
}

func TestTargetCharacteristics(t *testing.T) {
	w := genSmall(t)
	tree := w.Dataset.Tree
	for _, q := range w.Queries {
		n := tree.Node(q.Target)
		if n.Label != q.Spec.TargetLabel {
			t.Errorf("%q: target label %q, want %q", q.Spec.Keyword, n.Label, q.Spec.TargetLabel)
		}
		if n.Depth != q.Spec.TargetDepth {
			t.Errorf("%q: target depth %d, want %d", q.Spec.Keyword, n.Depth, q.Spec.TargetDepth)
		}
		if got := w.Dataset.Corpus.GlobalCount(q.Target); got != q.Spec.TargetGlobal {
			t.Errorf("%q: target global count %d, want %d", q.Spec.Keyword, got, q.Spec.TargetGlobal)
		}
		// Exactly TargetL result citations carry the target concept.
		count := 0
		for _, id := range q.Results {
			for _, c := range w.Dataset.Corpus.Concepts(id) {
				if c == q.Target {
					count++
					break
				}
			}
		}
		if count != q.Spec.TargetL {
			t.Errorf("%q: %d result citations carry the target, want %d",
				q.Spec.Keyword, count, q.Spec.TargetL)
		}
	}
}

func TestNavTreeContainsTarget(t *testing.T) {
	w := genSmall(t)
	for _, q := range w.Queries {
		nav, target, err := w.NavTree(&q)
		if err != nil {
			t.Fatalf("%q: %v", q.Spec.Keyword, err)
		}
		if err := nav.Validate(); err != nil {
			t.Fatalf("%q: %v", q.Spec.Keyword, err)
		}
		if nav.DistinctTotal() != len(q.Results) {
			t.Errorf("%q: nav tree over %d citations, want %d",
				q.Spec.Keyword, nav.DistinctTotal(), len(q.Results))
		}
		if got := nav.NumResults(target); got != q.Spec.TargetL {
			t.Errorf("%q: L(target) = %d, want %d", q.Spec.Keyword, got, q.Spec.TargetL)
		}
	}
}

func TestTargetsPairwiseIndependent(t *testing.T) {
	w := genSmall(t)
	tree := w.Dataset.Tree
	for i := range w.Queries {
		for j := range w.Queries {
			if i == j {
				continue
			}
			a, b := w.Queries[i].Target, w.Queries[j].Target
			if a == b || tree.IsAncestor(a, b) {
				t.Fatalf("targets %d and %d not independent", i, j)
			}
		}
	}
}

func TestQueryByKeyword(t *testing.T) {
	w := genSmall(t)
	q, ok := w.QueryByKeyword("prothymosin")
	if !ok || q.Spec.TargetLabel != "Histones" {
		t.Fatalf("QueryByKeyword = %+v, %v", q, ok)
	}
	if _, ok := w.QueryByKeyword("nonexistent"); ok {
		t.Fatal("found nonexistent query")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, HierarchyNodes: 1000, Specs: nil}); err == nil {
		t.Fatal("empty specs accepted")
	}
	bad := SmallConfig()
	bad.Specs[0].TargetL = bad.Specs[0].ResultSize + 1
	if _, err := Generate(bad); err == nil {
		t.Fatal("TargetL > ResultSize accepted")
	}
}

func TestRelabeledTreeStillValid(t *testing.T) {
	w := genSmall(t)
	if err := w.Dataset.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Targets resolvable by their Table I labels.
	for _, q := range w.Queries {
		id, ok := w.Dataset.Tree.ByLabel(q.Spec.TargetLabel)
		if !ok || id != q.Target {
			t.Fatalf("ByLabel(%q) = %v, %v", q.Spec.TargetLabel, id, ok)
		}
	}
	_ = hierarchy.None // keep import if assertions above change
}

func TestFociExposed(t *testing.T) {
	w := genSmall(t)
	for _, q := range w.Queries {
		if len(q.Foci) != q.Spec.FocusAreas {
			t.Fatalf("%q: %d foci, want %d", q.Spec.Keyword, len(q.Foci), q.Spec.FocusAreas)
		}
		if q.Foci[0] != q.Target {
			t.Fatalf("%q: Foci[0] != Target", q.Spec.Keyword)
		}
		tree := w.Dataset.Tree
		for i, a := range q.Foci {
			for j, b := range q.Foci {
				if i != j && (a == b || tree.IsAncestor(a, b)) {
					t.Fatalf("%q: foci %d and %d not independent", q.Spec.Keyword, i, j)
				}
			}
		}
	}
}
