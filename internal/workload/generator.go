package workload

import (
	"fmt"

	"bionav/internal/corpus"
	"bionav/internal/hierarchy"
	"bionav/internal/rng"
)

// generator accumulates the synthetic corpus: background noise plus each
// query's planted result set.
type generator struct {
	tree     *hierarchy.Tree
	src      *rng.Source
	ann      *corpus.Annotator
	reserved map[string]struct{}

	citations []corpus.Citation
	nextID    corpus.CitationID
}

// background appends one noise citation whose terms avoid every reserved
// query token.
func (g *generator) background() {
	focus := hierarchy.ConceptID(1 + g.src.Intn(g.tree.Len()-1))
	var title string
	var terms []string
	for {
		title = fmt.Sprintf("Observations on %s and %s",
			g.tree.Label(focus), g.tree.Label(hierarchy.ConceptID(1+g.src.Intn(g.tree.Len()-1))))
		terms = corpus.Tokenize(title)
		if !g.containsReserved(terms) {
			break
		}
		// Reserved collision (a generated label shares a query token):
		// re-roll the secondary concept; focus advances to ensure progress.
		focus = hierarchy.ConceptID(1 + g.src.Intn(g.tree.Len()-1))
	}
	g.citations = append(g.citations, corpus.Citation{
		ID:       g.nextID,
		Title:    title,
		Authors:  []string{"Background A."},
		Year:     1980 + g.src.Intn(28),
		Terms:    terms,
		Concepts: g.ann.Annotate(focus, 20+g.src.Intn(30)),
	})
	g.nextID++
}

func (g *generator) containsReserved(terms []string) bool {
	for _, t := range terms {
		if _, bad := g.reserved[t]; bad {
			return true
		}
	}
	return false
}

// plantQuery appends the spec.ResultSize citations of one query result and
// returns their IDs together with the research-area focus concepts
// (Foci[0] is the target). Exactly spec.TargetL of the citations are
// annotated with the target concept; the remainder is spread over the
// other areas. Every planted citation carries the keyword tokens so the
// search index returns exactly this set.
func (g *generator) plantQuery(spec QuerySpec, target hierarchy.ConceptID) ([]corpus.CitationID, []hierarchy.ConceptID, error) {
	if spec.TargetL > spec.ResultSize {
		return nil, nil, fmt.Errorf("workload: %q: TargetL %d exceeds ResultSize %d",
			spec.Keyword, spec.TargetL, spec.ResultSize)
	}
	areas := spec.FocusAreas
	if areas < 1 {
		areas = 1
	}
	// Research-area foci: the target plus areas-1 other concepts at
	// moderate depth, preferably in different top-level categories (the
	// paper stresses that prothymosin's areas are independent).
	foci := []hierarchy.ConceptID{target}
	for len(foci) < areas {
		c := hierarchy.ConceptID(1 + g.src.Intn(g.tree.Len()-1))
		if d := g.tree.Node(c).Depth; d < 3 || d > 7 {
			continue
		}
		ok := true
		for _, prev := range foci {
			if prev == c || g.tree.IsAncestor(prev, c) || g.tree.IsAncestor(c, prev) {
				ok = false
				break
			}
		}
		if ok {
			foci = append(foci, c)
		}
	}

	keyTokens := corpus.Tokenize(spec.Keyword)
	ids := make([]corpus.CitationID, 0, spec.ResultSize)
	for i := 0; i < spec.ResultSize; i++ {
		// The first TargetL citations belong to the target's research
		// area; the rest round-robin over the other areas (or stay with
		// the target area's general vicinity for single-area queries).
		var focus hierarchy.ConceptID
		var mustHaveTarget bool
		if i < spec.TargetL {
			focus = target
			mustHaveTarget = true
		} else if areas > 1 {
			focus = foci[1+i%(areas-1)]
		} else {
			// Single-area query: non-target citations cluster around the
			// target's parent region.
			focus = g.tree.Parent(target)
			if focus == g.tree.Root() || focus == hierarchy.None {
				focus = target
			}
		}

		density := spec.MeanConcepts/2 + g.src.Intn(spec.MeanConcepts+1)
		concepts := g.ann.Annotate(focus, density)
		if !mustHaveTarget {
			concepts = dropConcept(g.tree, concepts, target)
		}

		// Titles mention two of the citation's own (deep) concepts, so the
		// corpus has realistic term diversity within and across research
		// areas instead of one shared template per area.
		title := fmt.Sprintf("%s in the context of %s and %s",
			spec.Keyword, g.tree.Label(pickDeep(g.src, g.tree, concepts)),
			g.tree.Label(pickDeep(g.src, g.tree, concepts)))
		terms := append(append([]string(nil), keyTokens...), corpus.Tokenize(title)...)
		terms = dedupe(terms)
		// A concept label may coincide with another query's keyword (the
		// label vocabulary is biomedical too); strip foreign query tokens
		// so each keyword search returns exactly its planted set.
		terms = g.stripForeignReserved(terms, keyTokens)

		g.citations = append(g.citations, corpus.Citation{
			ID:       g.nextID,
			Title:    title,
			Authors:  []string{"Planted A.", "Planted B."},
			Year:     1990 + g.src.Intn(19),
			Terms:    terms,
			Concepts: concepts,
		})
		ids = append(ids, g.nextID)
		g.nextID++
	}
	return ids, foci, nil
}

// pickDeep returns a random concept from the deeper half of a citation's
// annotation set (specific concepts make plausible title words).
func pickDeep(src *rng.Source, tree *hierarchy.Tree, concepts []hierarchy.ConceptID) hierarchy.ConceptID {
	if len(concepts) == 0 {
		return 1
	}
	best := concepts[src.Intn(len(concepts))]
	for try := 0; try < 3; try++ {
		c := concepts[src.Intn(len(concepts))]
		if tree.Node(c).Depth > tree.Node(best).Depth {
			best = c
		}
	}
	return best
}

// dropConcept removes target and its whole subtree from a concept set
// (subtree removal keeps the set ancestor-closed).
func dropConcept(tree *hierarchy.Tree, concepts []hierarchy.ConceptID, target hierarchy.ConceptID) []hierarchy.ConceptID {
	out := concepts[:0]
	for _, c := range concepts {
		if c == target || tree.IsAncestor(target, c) {
			continue
		}
		out = append(out, c)
	}
	return out
}

// stripForeignReserved removes reserved query tokens that are not the
// current query's own tokens.
func (g *generator) stripForeignReserved(terms, own []string) []string {
	ownSet := make(map[string]struct{}, len(own))
	for _, t := range own {
		ownSet[t] = struct{}{}
	}
	out := terms[:0]
	for _, t := range terms {
		if _, reserved := g.reserved[t]; reserved {
			if _, mine := ownSet[t]; !mine {
				continue
			}
		}
		out = append(out, t)
	}
	return out
}

func dedupe(terms []string) []string {
	seen := make(map[string]struct{}, len(terms))
	out := terms[:0]
	for _, t := range terms {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
