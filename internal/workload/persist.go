package workload

import (
	"fmt"

	"bionav/internal/corpus"
	"bionav/internal/hierarchy"
	"bionav/internal/store"
)

// workloadTable is the sidecar table persisting the realized queries next
// to the dataset, so a database generated with `bionav-gen -workload`
// round-trips the Table I metadata (keyword, target concept, result set,
// generation spec).
const workloadTable = "workload"

// Save writes the workload's dataset plus the query sidecar table.
func (w *Workload) Save(dir string) error {
	return w.Dataset.SaveWith(dir, func(sw *store.Writer) error {
		tbl, err := sw.CreateTable(workloadTable)
		if err != nil {
			return err
		}
		var enc store.Encoder
		for i := range w.Queries {
			q := &w.Queries[i]
			enc.Reset()
			enc.PutString(q.Spec.Keyword)
			enc.PutString(q.Spec.TargetLabel)
			enc.PutUvarint(uint64(q.Spec.ResultSize))
			enc.PutUvarint(uint64(q.Spec.TargetDepth))
			enc.PutUvarint(uint64(q.Spec.TargetL))
			enc.PutUvarint(uint64(q.Spec.TargetGlobal))
			enc.PutUvarint(uint64(q.Spec.FocusAreas))
			enc.PutUvarint(uint64(q.Spec.MeanConcepts))
			enc.PutUvarint(uint64(q.Target))
			enc.PutUvarint(uint64(len(q.Foci)))
			for _, f := range q.Foci {
				enc.PutUvarint(uint64(f))
			}
			enc.PutUvarint(uint64(len(q.Results)))
			prev := corpus.CitationID(0)
			for _, id := range q.Results {
				enc.PutUvarint(uint64(id - prev))
				prev = id
			}
			if err := tbl.Append(enc.Bytes()); err != nil {
				return err
			}
		}
		return nil
	})
}

// Load reads a workload previously written by Save. It fails if dir holds
// a plain dataset without the workload sidecar.
func Load(dir string) (*Workload, error) {
	ds, err := store.LoadDataset(dir)
	if err != nil {
		return nil, err
	}
	db, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	if !db.HasTable(workloadTable) {
		return nil, fmt.Errorf("workload: %s has no workload table (generated without -workload?)", dir)
	}
	w := &Workload{Dataset: ds}
	err = db.ForEach(workloadTable, func(payload []byte) error {
		d := store.NewDecoder(payload)
		var q Query
		var u uint64
		if q.Spec.Keyword, err = d.String(); err != nil {
			return err
		}
		if q.Spec.TargetLabel, err = d.String(); err != nil {
			return err
		}
		if u, err = d.Uvarint(); err != nil {
			return err
		}
		q.Spec.ResultSize = int(u)
		if u, err = d.Uvarint(); err != nil {
			return err
		}
		q.Spec.TargetDepth = int(u)
		if u, err = d.Uvarint(); err != nil {
			return err
		}
		q.Spec.TargetL = int(u)
		if u, err = d.Uvarint(); err != nil {
			return err
		}
		q.Spec.TargetGlobal = int64(u)
		if u, err = d.Uvarint(); err != nil {
			return err
		}
		q.Spec.FocusAreas = int(u)
		if u, err = d.Uvarint(); err != nil {
			return err
		}
		q.Spec.MeanConcepts = int(u)
		if u, err = d.Uvarint(); err != nil {
			return err
		}
		q.Target = hierarchy.ConceptID(u)
		if q.Target <= 0 || int(q.Target) >= ds.Tree.Len() {
			return fmt.Errorf("workload: query %q has out-of-range target %d", q.Spec.Keyword, q.Target)
		}
		nf, err := d.Uvarint()
		if err != nil {
			return err
		}
		for j := uint64(0); j < nf; j++ {
			f, err := d.Uvarint()
			if err != nil {
				return err
			}
			if f == 0 || int(f) >= ds.Tree.Len() {
				return fmt.Errorf("workload: query %q has out-of-range focus %d", q.Spec.Keyword, f)
			}
			q.Foci = append(q.Foci, hierarchy.ConceptID(f))
		}
		n, err := d.Uvarint()
		if err != nil {
			return err
		}
		prev := corpus.CitationID(0)
		for j := uint64(0); j < n; j++ {
			delta, err := d.Uvarint()
			if err != nil {
				return err
			}
			prev += corpus.CitationID(delta)
			q.Results = append(q.Results, prev)
		}
		if err := d.Finish(); err != nil {
			return err
		}
		w.Queries = append(w.Queries, q)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("workload: empty workload table in %s", dir)
	}
	return w, nil
}
