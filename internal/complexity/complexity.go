// Package complexity makes the paper's §V complexity results executable:
// the TOPDOWN-EXHAUSTIVE Decision problem (TED), the MAXIMUM EDGE SUBGRAPH
// problem (MES) it reduces from, brute-force optimal solvers for both, and
// the Theorem 1 reduction itself. Property tests verify — on every small
// instance they can enumerate — that the reduction preserves optima, which
// is the strongest machine-checkable evidence for the paper's
// NP-completeness argument.
//
// TOPDOWN-EXHAUSTIVE is the simplified navigation model used in the proof:
// BioNav performs one EdgeCut on the root, the user reads the label of
// every created component subtree, picks one at random and runs
// SHOWRESULTS. Its expected cost is |C| + Σ_i |unique(T_i)| / |C| over the
// created subtrees, so minimizing cost for a fixed subtree count means
// maximizing the duplicates kept *inside* subtrees — the quantity TED asks
// about.
package complexity

import (
	"fmt"
	"math/bits"
)

// TEDInstance is a navigation tree whose nodes carry multisets of result
// elements. The root is node 0; Parent[i] < i for i > 0.
type TEDInstance struct {
	Parent []int
	Elems  [][]int // element identifiers; duplicates within a node allowed
}

// Validate checks structural sanity.
func (in *TEDInstance) Validate() error {
	if len(in.Parent) == 0 || len(in.Parent) != len(in.Elems) {
		return fmt.Errorf("complexity: malformed TED instance")
	}
	if in.Parent[0] != -1 {
		return fmt.Errorf("complexity: root parent must be -1")
	}
	for i := 1; i < len(in.Parent); i++ {
		if in.Parent[i] < 0 || in.Parent[i] >= i {
			return fmt.Errorf("complexity: node %d has invalid parent %d", i, in.Parent[i])
		}
	}
	return nil
}

// n returns the node count.
func (in *TEDInstance) n() int { return len(in.Parent) }

// isAncestor reports proper ancestry.
func (in *TEDInstance) isAncestor(a, b int) bool {
	for cur := in.Parent[b]; cur != -1; cur = in.Parent[cur] {
		if cur == a {
			return true
		}
	}
	return false
}

// subtreeMask returns the bitmask of v's subtree (including v).
func (in *TEDInstance) subtreeMask(v int) uint64 {
	mask := uint64(1) << uint(v)
	for i := v + 1; i < in.n(); i++ {
		if in.isAncestor(v, i) || in.Parent[i] == v {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// duplicatesIn counts duplicates among the elements of the nodes in mask:
// an element occurring t times contributes t−1.
func (in *TEDInstance) duplicatesIn(mask uint64) int {
	counts := make(map[int]int)
	total := 0
	for i := 0; i < in.n(); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		for _, e := range in.Elems[i] {
			counts[e]++
			total++
		}
	}
	return total - len(counts)
}

// uniqueIn counts distinct elements of the nodes in mask.
func (in *TEDInstance) uniqueIn(mask uint64) int {
	set := make(map[int]struct{})
	for i := 0; i < in.n(); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		for _, e := range in.Elems[i] {
			set[e] = struct{}{}
		}
	}
	return len(set)
}

// TEDSolution is a valid EdgeCut evaluated under TED's objective.
type TEDSolution struct {
	Cut        []int // nodes whose parent edge is cut; |Cut|+1 subtrees
	Subtrees   int
	Duplicates int // duplicates kept inside the created subtrees
}

// validCuts enumerates every valid EdgeCut (as sorted node lists), i.e.
// non-empty pairwise non-ancestral subsets of non-root nodes. The instance
// must have at most 20 nodes.
func (in *TEDInstance) validCuts() [][]int {
	var nonRoot []int
	for i := 1; i < in.n(); i++ {
		nonRoot = append(nonRoot, i)
	}
	var out [][]int
	for sub := uint64(1); sub < 1<<uint(len(nonRoot)); sub++ {
		var cut []int
		for j, v := range nonRoot {
			if sub&(1<<uint(j)) != 0 {
				cut = append(cut, v)
			}
		}
		ok := true
		for _, a := range cut {
			for _, b := range cut {
				if a != b && in.isAncestor(a, b) {
					ok = false
				}
			}
		}
		if ok {
			out = append(out, cut)
		}
	}
	return out
}

// evaluate computes the subtree count and internal-duplicate total of cut.
func (in *TEDInstance) evaluate(cut []int) TEDSolution {
	full := uint64(1)<<uint(in.n()) - 1
	var lowered uint64
	dups := 0
	for _, v := range cut {
		sv := in.subtreeMask(v)
		lowered |= sv
		dups += in.duplicatesIn(sv)
	}
	upper := full &^ lowered
	dups += in.duplicatesIn(upper)
	return TEDSolution{Cut: cut, Subtrees: len(cut) + 1, Duplicates: dups}
}

// SolveTED maximizes internal duplicates over all valid EdgeCuts producing
// exactly subtrees components (brute force; ≤ 20 nodes). The boolean is
// false if no valid cut yields that component count.
func SolveTED(in *TEDInstance, subtrees int) (TEDSolution, bool) {
	if in.n() > 20 {
		panic("complexity: SolveTED instance too large for brute force")
	}
	if subtrees == 1 {
		// The empty cut: the whole tree is one component (MES's k = N).
		full := uint64(1)<<uint(in.n()) - 1
		return TEDSolution{Subtrees: 1, Duplicates: in.duplicatesIn(full)}, true
	}
	best := TEDSolution{Duplicates: -1}
	for _, cut := range in.validCuts() {
		if len(cut)+1 != subtrees {
			continue
		}
		sol := in.evaluate(cut)
		if sol.Duplicates > best.Duplicates {
			best = sol
		}
	}
	return best, best.Duplicates >= 0
}

// DecideTED answers the §V decision question: is there a valid EdgeCut
// creating `subtrees` components with at least `dups` internal duplicates?
func DecideTED(in *TEDInstance, subtrees, dups int) bool {
	sol, ok := SolveTED(in, subtrees)
	return ok && sol.Duplicates >= dups
}

// ExhaustiveCost is the TOPDOWN-EXHAUSTIVE expected navigation cost of a
// cut: the user reads all |C|+1 component labels, then SHOWRESULTS on one
// component chosen uniformly — the average distinct-result count.
func (in *TEDInstance) ExhaustiveCost(cut []int) float64 {
	full := uint64(1)<<uint(in.n()) - 1
	var lowered uint64
	sum := 0
	for _, v := range cut {
		sv := in.subtreeMask(v)
		lowered |= sv
		sum += in.uniqueIn(sv)
	}
	upper := full &^ lowered
	sum += in.uniqueIn(upper)
	m := float64(len(cut) + 1)
	return m + float64(sum)/m
}

// OptimalExhaustiveCut minimizes ExhaustiveCost by brute force.
func OptimalExhaustiveCut(in *TEDInstance) ([]int, float64) {
	var best []int
	bestCost := 0.0
	for _, cut := range in.validCuts() {
		c := in.ExhaustiveCost(cut)
		if best == nil || c < bestCost {
			best, bestCost = cut, c
		}
	}
	return best, bestCost
}

// WeightedEdge is one MES graph edge.
type WeightedEdge struct {
	U, V   int
	Weight int
}

// MESInstance is a MAXIMUM EDGE SUBGRAPH instance: pick k vertices
// maximizing the total weight of induced edges. NP-complete [Garey &
// Johnson, via the paper's reference 7].
type MESInstance struct {
	N     int
	Edges []WeightedEdge
}

// Validate checks edge endpoints and weights.
func (g *MESInstance) Validate() error {
	if g.N <= 0 {
		return fmt.Errorf("complexity: MES with %d vertices", g.N)
	}
	for _, e := range g.Edges {
		if e.U < 0 || e.U >= g.N || e.V < 0 || e.V >= g.N || e.U == e.V {
			return fmt.Errorf("complexity: bad edge %+v", e)
		}
		if e.Weight < 0 {
			return fmt.Errorf("complexity: negative weight %+v", e)
		}
	}
	return nil
}

// SolveMES maximizes induced edge weight over all k-subsets (brute force;
// ≤ 20 vertices). Returns the chosen vertex set and its weight.
func SolveMES(g *MESInstance, k int) ([]int, int) {
	if g.N > 20 {
		panic("complexity: SolveMES instance too large for brute force")
	}
	if k < 0 || k > g.N {
		return nil, 0
	}
	bestW := -1
	var best []int
	for sub := uint64(0); sub < 1<<uint(g.N); sub++ {
		if bits.OnesCount64(sub) != k {
			continue
		}
		w := 0
		for _, e := range g.Edges {
			if sub&(1<<uint(e.U)) != 0 && sub&(1<<uint(e.V)) != 0 {
				w += e.Weight
			}
		}
		if w > bestW {
			bestW = w
			best = best[:0]
			for v := 0; v < g.N; v++ {
				if sub&(1<<uint(v)) != 0 {
					best = append(best, v)
				}
			}
		}
	}
	if bestW < 0 {
		return nil, 0
	}
	return append([]int(nil), best...), bestW
}

// DecideMES answers: is there a k-vertex subset with induced weight ≥ w?
func DecideMES(g *MESInstance, k, w int) bool {
	_, got := SolveMES(g, k)
	return got >= w
}

// ReduceMESToTED builds the Theorem 1 instance: an empty root with one
// child per MES vertex; for every edge (u,v) of weight w, w fresh elements
// are added to both u's and v's nodes. Keeping vertex set S in the upper
// subtree preserves exactly the induced edge weight of S as duplicates, so
//
//	MES has a k-set of weight ≥ W
//	⇔ TED has a cut into (N−k+1) subtrees with ≥ W duplicates.
func ReduceMESToTED(g *MESInstance) *TEDInstance {
	in := &TEDInstance{
		Parent: make([]int, g.N+1),
		Elems:  make([][]int, g.N+1),
	}
	in.Parent[0] = -1
	for v := 1; v <= g.N; v++ {
		in.Parent[v] = 0
	}
	next := 0
	for _, e := range g.Edges {
		for i := 0; i < e.Weight; i++ {
			in.Elems[e.U+1] = append(in.Elems[e.U+1], next)
			in.Elems[e.V+1] = append(in.Elems[e.V+1], next)
			next++
		}
	}
	return in
}

// TEDParamsFor translates MES parameters (k, W) into the equivalent TED
// parameters (subtrees, duplicates) under ReduceMESToTED.
func TEDParamsFor(g *MESInstance, k, w int) (subtrees, dups int) {
	return g.N - k + 1, w
}
