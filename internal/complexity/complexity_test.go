package complexity

import (
	"testing"
	"testing/quick"

	"bionav/internal/rng"
)

// paperExample builds a small TED instance with an obvious best grouping:
// nodes 1 and 2 share elements, node 3 is disjoint.
func paperExample() *TEDInstance {
	return &TEDInstance{
		Parent: []int{-1, 0, 1, 0},
		Elems: [][]int{
			{},           // root
			{1, 2, 3},    // node 1
			{1, 2, 4},    // node 2 (child of 1; shares 1,2)
			{5, 6, 7, 8}, // node 3
		},
	}
}

func TestTEDValidate(t *testing.T) {
	if err := paperExample().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &TEDInstance{Parent: []int{-1, 2}, Elems: [][]int{{}, {}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("forward parent accepted")
	}
	if err := (&TEDInstance{}).Validate(); err == nil {
		t.Fatal("empty instance accepted")
	}
	root := &TEDInstance{Parent: []int{0}, Elems: [][]int{{}}}
	if err := root.Validate(); err == nil {
		t.Fatal("bad root parent accepted")
	}
}

func TestDuplicateCounting(t *testing.T) {
	in := paperExample()
	// Whole tree: elements 1,2 twice → 2 duplicates.
	full := uint64(1)<<uint(in.n()) - 1
	if d := in.duplicatesIn(full); d != 2 {
		t.Fatalf("duplicatesIn(full) = %d, want 2", d)
	}
	// Subtree {1,2}: also 2 duplicates.
	if d := in.duplicatesIn(in.subtreeMask(1)); d != 2 {
		t.Fatalf("duplicatesIn(subtree 1) = %d, want 2", d)
	}
	// Repeated element within one node counts t-1.
	rep := &TEDInstance{Parent: []int{-1}, Elems: [][]int{{9, 9, 9}}}
	if d := rep.duplicatesIn(1); d != 2 {
		t.Fatalf("triple element duplicates = %d, want 2", d)
	}
}

func TestSolveTEDKeepsSharersTogether(t *testing.T) {
	in := paperExample()
	// Two subtrees: best cut separates node 3 (or keeps 1,2 together some
	// other way); duplicates must stay 2.
	sol, ok := SolveTED(in, 2)
	if !ok {
		t.Fatal("no solution")
	}
	if sol.Duplicates != 2 {
		t.Fatalf("duplicates = %d, want 2 (cut %v)", sol.Duplicates, sol.Cut)
	}
	// Three subtrees: cutting both node 2 and node 3 splits the sharers:
	// the only way to keep 2 duplicates is cutting {1,3} (subtree {1,2}
	// lowered together).
	sol3, ok := SolveTED(in, 3)
	if !ok {
		t.Fatal("no 3-subtree solution")
	}
	if sol3.Duplicates != 2 {
		t.Fatalf("3-subtree duplicates = %d (cut %v)", sol3.Duplicates, sol3.Cut)
	}
	if !DecideTED(in, 3, 2) || DecideTED(in, 3, 3) {
		t.Fatal("DecideTED thresholds wrong")
	}
}

func TestSolveTEDImpossibleCount(t *testing.T) {
	in := paperExample()
	if _, ok := SolveTED(in, 10); ok {
		t.Fatal("found cut with more subtrees than nodes")
	}
}

func TestExhaustiveCostConsistency(t *testing.T) {
	in := paperExample()
	// Cutting node 3 only: subtrees {root,1,2} (unique 4) and {3} (unique
	// 4); cost = 2 + (4+4)/2 = 6.
	got := in.ExhaustiveCost([]int{3})
	if got != 6 {
		t.Fatalf("ExhaustiveCost = %v, want 6", got)
	}
}

// TestDuplicateMaximizationMinimizesCost verifies the paper's §V argument:
// for a fixed subtree count m, the cut maximizing internal duplicates is
// exactly the cut minimizing the TOPDOWN-EXHAUSTIVE expected cost, because
// cost = m + (Σ elements − internal duplicates)/m and Σ elements is fixed.
func TestDuplicateMaximizationMinimizesCost(t *testing.T) {
	src := rng.New(5150)
	for trial := 0; trial < 40; trial++ {
		in := randomTED(src, 2+src.Intn(6), 8)
		cuts := in.validCuts()
		byCount := map[int][][]int{}
		for _, c := range cuts {
			byCount[len(c)+1] = append(byCount[len(c)+1], c)
		}
		for m, group := range byCount {
			bestDup, bestCost := -1, 0.0
			var dupCut, costCut []int
			for _, c := range group {
				if d := in.evaluate(c).Duplicates; d > bestDup {
					bestDup, dupCut = d, c
				}
				if cost := in.ExhaustiveCost(c); costCut == nil || cost < bestCost {
					bestCost, costCut = cost, c
				}
			}
			// The argmax-duplicates cut must achieve the minimum cost
			// (ties allowed).
			if got := in.ExhaustiveCost(dupCut); got > bestCost+1e-9 {
				t.Fatalf("trial %d m=%d: max-dup cut %v costs %v > min %v (cut %v)",
					trial, m, dupCut, got, bestCost, costCut)
			}
		}
	}
}

func randomTED(src *rng.Source, n, universe int) *TEDInstance {
	in := &TEDInstance{Parent: make([]int, n), Elems: make([][]int, n)}
	in.Parent[0] = -1
	for i := 1; i < n; i++ {
		in.Parent[i] = src.Intn(i)
	}
	for i := 0; i < n; i++ {
		k := src.Intn(5)
		for j := 0; j < k; j++ {
			in.Elems[i] = append(in.Elems[i], src.Intn(universe))
		}
	}
	return in
}

func randomMES(src *rng.Source, n, maxW int) *MESInstance {
	g := &MESInstance{N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Intn(2) == 0 {
				g.Edges = append(g.Edges, WeightedEdge{U: u, V: v, Weight: 1 + src.Intn(maxW)})
			}
		}
	}
	return g
}

func TestMESValidateAndSolve(t *testing.T) {
	// Triangle with a pendant: best 2-subset is the heaviest edge.
	g := &MESInstance{N: 4, Edges: []WeightedEdge{
		{0, 1, 5}, {1, 2, 3}, {0, 2, 1}, {2, 3, 10},
	}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	set, w := SolveMES(g, 2)
	if w != 10 || len(set) != 2 || set[0] != 2 || set[1] != 3 {
		t.Fatalf("SolveMES(2) = %v weight %d", set, w)
	}
	// Best 3-subset: {0,1,2} = 9 vs {1,2,3} = 13 vs {0,2,3} = 11.
	if _, w := SolveMES(g, 3); w != 13 {
		t.Fatalf("SolveMES(3) weight = %d, want 13", w)
	}
	if !DecideMES(g, 2, 10) || DecideMES(g, 2, 11) {
		t.Fatal("DecideMES thresholds wrong")
	}
	if set, w := SolveMES(g, 0); w != 0 || len(set) != 0 {
		t.Fatalf("SolveMES(0) = %v, %d", set, w)
	}

	bad := &MESInstance{N: 2, Edges: []WeightedEdge{{0, 0, 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("self-loop accepted")
	}
}

// TestTheorem1ReductionPreservesOptima is the machine-checked core of §V:
// on every random small MES instance, the optimum of the reduced TED
// instance (with the translated parameters) equals the MES optimum.
func TestTheorem1ReductionPreservesOptima(t *testing.T) {
	src := rng.New(1969)
	for trial := 0; trial < 60; trial++ {
		n := 2 + src.Intn(5)
		g := randomMES(src, n, 4)
		in := ReduceMESToTED(g)
		if err := in.Validate(); err != nil {
			t.Fatalf("trial %d: reduced instance invalid: %v", trial, err)
		}
		for k := 1; k <= n; k++ {
			_, wantW := SolveMES(g, k)
			subtrees, _ := TEDParamsFor(g, k, wantW)
			sol, ok := SolveTED(in, subtrees)
			if !ok {
				t.Fatalf("trial %d k=%d: no TED solution with %d subtrees", trial, k, subtrees)
			}
			if sol.Duplicates != wantW {
				t.Fatalf("trial %d k=%d: TED optimum %d != MES optimum %d",
					trial, k, sol.Duplicates, wantW)
			}
		}
	}
}

// TestTheorem1DecisionEquivalence checks the ⇔ of the decision versions
// with arbitrary thresholds, not just at the optimum.
func TestTheorem1DecisionEquivalence(t *testing.T) {
	src := rng.New(777)
	err := quick.Check(func(seed uint32, kRaw, wRaw uint8) bool {
		g := randomMES(rng.New(uint64(seed)), 2+int(seed%4), 3)
		k := 1 + int(kRaw)%g.N
		w := int(wRaw) % 12
		subtrees, dups := TEDParamsFor(g, k, w)
		return DecideMES(g, k, w) == DecideTED(ReduceMESToTED(g), subtrees, dups)
	}, &quick.Config{MaxCount: 120, Rand: nil})
	_ = src
	if err != nil {
		t.Fatal(err)
	}
}

func TestOptimalExhaustiveCut(t *testing.T) {
	in := paperExample()
	cut, cost := OptimalExhaustiveCut(in)
	if cut == nil {
		t.Fatal("no cut")
	}
	// Exhaustive check against all cuts.
	for _, c := range in.validCuts() {
		if in.ExhaustiveCost(c) < cost-1e-9 {
			t.Fatalf("cut %v cheaper than reported optimum %v", c, cut)
		}
	}
}
