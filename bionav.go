package bionav

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"bionav/internal/core"
	"bionav/internal/corpus"
	"bionav/internal/hierarchy"
	"bionav/internal/index"
	"bionav/internal/navigate"
	"bionav/internal/navtree"
	"bionav/internal/rank"
	"bionav/internal/store"
)

// Re-exported identifier and record types. The implementations live in
// internal packages; these aliases are the supported public surface.
type (
	// ConceptID identifies a concept in the hierarchy.
	ConceptID = hierarchy.ConceptID
	// CitationID is a PMID-like citation identifier.
	CitationID = corpus.CitationID
	// Citation is one bibliographic record.
	Citation = corpus.Citation
	// Dataset bundles hierarchy, corpus and search index.
	Dataset = store.Dataset
	// Cost is the paper's navigation-cost breakdown.
	Cost = navigate.Cost
	// Policy chooses the EdgeCut applied by each EXPAND.
	Policy = core.Policy
	// CostModel carries the §III–IV cost-model constants.
	CostModel = core.CostModel
)

// HeuristicPolicy returns the paper's production expansion policy,
// Heuristic-ReducedOpt with reduced-tree budget k (the paper uses 10) and
// the default cost model.
func HeuristicPolicy(k int) Policy {
	if k <= 0 {
		k = 10
	}
	return &core.HeuristicReducedOpt{K: k, Model: core.DefaultCostModel()}
}

// CachedHeuristicPolicy returns Heuristic-ReducedOpt with the §VI-B plan
// cache: follow-up expansions of components created by earlier cuts are
// answered from the retained Opt-EdgeCut memo. The returned policy carries
// per-session state — create one per Navigation rather than sharing it
// across engines.
func CachedHeuristicPolicy(k int) Policy {
	if k <= 0 {
		k = 10
	}
	return &core.CachedHeuristic{K: k, Model: core.DefaultCostModel()}
}

// StaticPolicy returns the static-navigation baseline: every EXPAND
// reveals all children of the expanded concept.
func StaticPolicy() Policy { return core.StaticAll{} }

// TopKPolicy returns the GoPubMed-style baseline revealing the K
// highest-count children per EXPAND.
func TopKPolicy(k int) Policy { return core.StaticTopK{K: k} }

// DefaultCostModel returns the cost-model constants used in the paper's
// experiments (K = 1, thresholds 50/10, entropy estimator on).
func DefaultCostModel() CostModel { return core.DefaultCostModel() }

// Engine serves keyword queries and navigations over one dataset. An
// Engine is safe for concurrent use; each Navigation is single-user state.
type Engine struct {
	ds     *Dataset
	policy Policy
	scorer *rank.Scorer
}

// NewEngine wraps a dataset with the default Heuristic-ReducedOpt policy
// and a BM25 relevance scorer for SHOWRESULTS ordering.
func NewEngine(ds *Dataset) *Engine {
	return &Engine{
		ds:     ds,
		policy: HeuristicPolicy(10),
		scorer: rank.NewScorer(ds.Corpus, ds.Index),
	}
}

// Open loads a dataset previously saved with Engine.Save (or written by
// cmd/bionav-gen) and wraps it in an Engine.
func Open(dir string) (*Engine, error) {
	ds, err := store.LoadDataset(dir)
	if err != nil {
		return nil, err
	}
	return NewEngine(ds), nil
}

// Save persists the engine's dataset into a BioNav database directory.
func (e *Engine) Save(dir string) error { return e.ds.Save(dir) }

// Dataset exposes the underlying dataset.
func (e *Engine) Dataset() *Dataset { return e.ds }

// SetPolicy overrides the expansion policy used by future Navigations.
func (e *Engine) SetPolicy(p Policy) { e.policy = p }

// Search returns the citation IDs matching a keyword query. Plain terms
// combine conjunctively; uppercase AND / OR / NOT and parentheses select
// PubMed-style boolean retrieval.
func (e *Engine) Search(keywords string) []CitationID {
	return e.ds.Index.SearchQuery(keywords)
}

// Citation resolves a citation ID.
func (e *Engine) Citation(id CitationID) (*Citation, bool) {
	return e.ds.Corpus.Get(id)
}

// Navigate runs a keyword query and starts a navigation over its results.
// It fails if no citation matches.
func (e *Engine) Navigate(keywords string) (*Navigation, error) {
	results := e.Search(keywords)
	if len(results) == 0 {
		return nil, fmt.Errorf("bionav: no citations match %q", keywords)
	}
	return e.NavigateResults(keywords, results)
}

// NavigateResults starts a navigation over an explicit result set, which
// lets callers combine BioNav with their own retrieval.
func (e *Engine) NavigateResults(keywords string, results []CitationID) (*Navigation, error) {
	nav := navtree.Build(e.ds.Corpus, results)
	if nav.DistinctTotal() == 0 {
		return nil, fmt.Errorf("bionav: none of the %d result IDs exist in the corpus", len(results))
	}
	return &Navigation{
		engine:   e,
		keywords: keywords,
		nav:      nav,
		session:  navigate.NewSession(nav, e.policy),
	}, nil
}

// Navigation is one user's drill-down over a query result: a thin facade
// over the active tree and the session cost accounting.
type Navigation struct {
	engine   *Engine
	keywords string
	nav      *navtree.Tree
	session  *navigate.Session
}

// Keywords returns the query this navigation was started from.
func (n *Navigation) Keywords() string { return n.keywords }

// Results reports the number of distinct citations under navigation.
func (n *Navigation) Results() int { return n.nav.DistinctTotal() }

// Root returns the root node ID (always 0).
func (n *Navigation) Root() int { return n.nav.Root() }

// Cost returns the navigation cost accumulated so far.
func (n *Navigation) Cost() Cost { return n.session.Cost() }

// Expand performs an EXPAND on the given visible node, returning the newly
// revealed node IDs.
func (n *Navigation) Expand(node int) ([]int, error) {
	return n.session.Expand(node)
}

// Backtrack undoes the most recent EXPAND.
func (n *Navigation) Backtrack() error { return n.session.Backtrack() }

// ShowResults lists the citations of a visible node's component, ordered
// by BM25 relevance to the navigation's query (the "simple ranking
// techniques" of §I), with recency as the tiebreak.
func (n *Navigation) ShowResults(node int) ([]*Citation, error) {
	ids, err := n.session.ShowResults(node)
	if err != nil {
		return nil, err
	}
	ranked := n.engine.scorer.Rank(n.keywords, ids)
	out := make([]*Citation, 0, len(ranked))
	for _, r := range ranked {
		if cit, ok := n.engine.ds.Corpus.Get(r.ID); ok {
			out = append(out, cit)
		}
	}
	return out, nil
}

// Node is one visible row of the navigation (Definition 5's visualization).
type Node struct {
	ID         int
	Label      string
	TreeID     string // MeSH-style positional identifier
	Count      int    // distinct citations in the node's component
	Depth      int    // indentation level in the visible tree
	Expandable bool
}

// Visible returns the currently visible tree as a flattened pre-order list
// with Depth for indentation; children are in ranked order.
func (n *Navigation) Visible() []Node {
	vis := n.session.Visualize()
	var out []Node
	var walk func(id navtree.NodeID, depth int)
	walk = func(id navtree.NodeID, depth int) {
		v := vis[id]
		out = append(out, Node{
			ID:         id,
			Label:      v.Label,
			TreeID:     n.engine.ds.Tree.Node(n.nav.Concept(id)).TreeID,
			Count:      v.Count,
			Depth:      depth,
			Expandable: v.Expandable,
		})
		for _, c := range v.Children {
			walk(c, depth+1)
		}
	}
	walk(n.nav.Root(), 0)
	return out
}

// NodeByLabel resolves a concept label to its visible or hidden navigation
// node, e.g. to check whether a concept of interest has been revealed yet.
func (n *Navigation) NodeByLabel(label string) (int, bool) {
	c, ok := n.engine.ds.Tree.ByLabel(label)
	if !ok {
		return 0, false
	}
	return n.nav.NodeByConcept(c)
}

// IsVisible reports whether a node is currently revealed.
func (n *Navigation) IsVisible(node int) bool {
	return node >= 0 && node < n.nav.Len() && n.session.Active().IsVisible(node)
}

// ComponentOf returns the visible component root whose I-set contains
// node — the concept a user would expand next to surface a hidden node.
func (n *Navigation) ComponentOf(node int) (int, bool) {
	if node < 0 || node >= n.nav.Len() {
		return 0, false
	}
	return n.session.Active().ComponentOf(node), true
}

// Export writes the navigation's action history as JSON — a shareable,
// replayable session (see Engine.ReplayNavigation).
func (n *Navigation) Export(w io.Writer) error { return n.session.Export(w) }

// ReplayNavigation re-runs keywords and restores an exported session onto
// the fresh result set: the recorded EdgeCuts are applied verbatim, so the
// restored view matches the original even if policies have changed.
func (e *Engine) ReplayNavigation(keywords string, r io.Reader) (*Navigation, error) {
	results := e.Search(keywords)
	if len(results) == 0 {
		return nil, fmt.Errorf("bionav: no citations match %q", keywords)
	}
	nav := navtree.Build(e.ds.Corpus, results)
	session, err := navigate.Replay(nav, e.policy, r)
	if err != nil {
		return nil, err
	}
	return &Navigation{engine: e, keywords: keywords, nav: nav, session: session}, nil
}

// Render writes the visible tree in the style of the paper's Fig. 2:
//
//	MESH (313)
//	  Amino Acids, Peptides, and Proteins (310) >>>
//	  ...
func (n *Navigation) Render(w io.Writer) error {
	for _, row := range n.Visible() {
		marker := ""
		if row.Expandable {
			marker = " >>>"
		}
		if _, err := fmt.Fprintf(w, "%s%s (%d)%s\n",
			strings.Repeat("  ", row.Depth), row.Label, row.Count, marker); err != nil {
			return err
		}
	}
	return nil
}

// Suggestions returns up to max keyword terms from the corpus ordered by
// descending document frequency — handy for demos and CLI tab-completion.
func (e *Engine) Suggestions(max int) []string {
	type tf struct {
		term string
		df   int
	}
	var all []tf
	seen := map[string]bool{}
	for i := 0; i < e.ds.Corpus.Len(); i++ {
		for _, t := range e.ds.Corpus.At(i).Terms {
			if len(t) < 4 || stopwords[t] || seen[t] {
				continue
			}
			seen[t] = true
			all = append(all, tf{t, e.ds.Index.DocFreq(t)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].df != all[j].df {
			return all[i].df > all[j].df
		}
		return all[i].term < all[j].term
	})
	if max > len(all) {
		max = len(all)
	}
	out := make([]string, max)
	for i := range out {
		out[i] = all[i].term
	}
	return out
}

// Import builds a dataset from real NLM data files: a MeSH descriptor
// file in ASCII exchange format (d2008.bin-style MH/MN records) and a
// MEDLINE citation set in PubmedArticleSet XML (what eutils EFetch
// returns). Per-concept global counts default to the counts observed in
// the imported corpus, which keeps the EXPLORE-probability selectivities
// meaningful for self-contained datasets. The returned stats report what
// the citation import kept and dropped.
func Import(mesh, medline io.Reader) (*Dataset, ImportStats, error) {
	tree, err := hierarchy.ParseMeSHASCII(mesh)
	if err != nil {
		return nil, ImportStats{}, err
	}
	cits, stats, err := corpus.ParseMedlineXML(medline, tree)
	if err != nil {
		return nil, stats, err
	}
	if len(cits) == 0 {
		return nil, stats, fmt.Errorf("bionav: no citations imported")
	}
	corp, err := corpus.New(tree, cits, make([]int64, tree.Len()))
	if err != nil {
		return nil, stats, err
	}
	return &Dataset{Tree: tree, Corpus: corp, Index: index.Build(corp)}, stats, nil
}

// ImportStats is the citation-import report of Import.
type ImportStats = corpus.ImportStats

// stopwords are boilerplate tokens of synthetic titles, excluded from
// Suggestions so demos propose meaningful query terms.
var stopwords = map[string]bool{
	"role": true, "study": true, "effects": true, "models": true,
	"during": true, "controlled": true, "vivo": true, "molecular": true,
	"mechanisms": true, "expression": true, "characterization": true,
	"regulation": true, "dependent": true, "observations": true,
	"context": true, "type": true, "related": true, "structures": true,
}

// DemoConfig sizes GenerateDemo's synthetic dataset. Zero values select
// laptop-friendly defaults.
type DemoConfig struct {
	Seed         uint64
	Concepts     int // hierarchy size (default 6,000)
	Citations    int // corpus size (default 2,000)
	MeanConcepts int // annotations per citation (default 40)
}

// GenerateDemo builds a self-contained synthetic dataset: a MeSH-like
// hierarchy, an annotated citation corpus, and a keyword index. The same
// config always produces the identical dataset.
func GenerateDemo(cfg DemoConfig) *Dataset {
	if cfg.Seed == 0 {
		cfg.Seed = 2009
	}
	if cfg.Concepts == 0 {
		cfg.Concepts = 6000
	}
	if cfg.Citations == 0 {
		cfg.Citations = 2000
	}
	if cfg.MeanConcepts == 0 {
		cfg.MeanConcepts = 40
	}
	if cfg.Concepts < 20 {
		cfg.Concepts = 20
	}
	// MeSH-scale datasets get the ~112 subcategory roots of the real
	// hierarchy; small demos scale the top level down so the tree keeps
	// depth.
	topLevel := 112
	if cfg.Concepts < 4*topLevel {
		topLevel = cfg.Concepts / 4
	}
	tree := hierarchy.Generate(hierarchy.GenConfig{
		Seed: cfg.Seed, Nodes: cfg.Concepts, TopLevel: topLevel, MaxDepth: 11,
	})
	corp := corpus.Generate(tree, corpus.GenConfig{
		Seed: cfg.Seed + 1, Citations: cfg.Citations, MeanConcepts: cfg.MeanConcepts,
		FirstID: 10_000_000, YearLo: 1975, YearHi: 2008,
	})
	return &Dataset{Tree: tree, Corpus: corp, Index: index.Build(corp)}
}
