// The webclient example exercises BioNav's on-line architecture (§VII)
// end-to-end over HTTP: it starts the web server on an in-memory demo
// dataset, then acts as a client — issuing a keyword query, expanding the
// returned tree through the JSON API, and fetching citation summaries —
// exactly what the browser UI does.
//
// Run with:
//
//	go run ./examples/webclient
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"bionav"
	"bionav/internal/server"
)

type treeNode struct {
	Node       int        `json:"node"`
	Label      string     `json:"label"`
	Count      int        `json:"count"`
	Expandable bool       `json:"expandable"`
	Children   []treeNode `json:"children"`
}

type state struct {
	Session string `json:"session"`
	Results int    `json:"results"`
	Cost    struct {
		Expands    int `json:"expands"`
		Navigation int `json:"navigation"`
	} `json:"cost"`
	Tree treeNode `json:"tree"`
}

func main() {
	log.SetFlags(0)

	ds := bionav.GenerateDemo(bionav.DemoConfig{Seed: 11})
	ts := httptest.NewServer(server.New(ds, server.Config{}).Handler())
	defer ts.Close()
	fmt.Printf("BioNav server serving %d concepts / %d citations at %s\n\n",
		ds.Tree.Len(), ds.Corpus.Len(), ts.URL)

	// A term guaranteed to match the demo corpus.
	query := bionav.NewEngine(ds).Suggestions(1)[0]

	var st state
	post(ts.URL+"/api/query", map[string]any{"keywords": query}, &st)
	fmt.Printf("POST /api/query %q → session %s, %d results\n", query, st.Session, st.Results)

	// Expand the root twice through the API.
	for i := 0; i < 2; i++ {
		post(ts.URL+"/api/expand", map[string]any{"session": st.Session, "node": st.Tree.Node}, &st)
		fmt.Printf("POST /api/expand → %d visible children, navigation cost %d\n",
			len(st.Tree.Children), st.Cost.Navigation)
	}

	fmt.Println("\nvisible tree from the API:")
	printTree(st.Tree, 0)

	// Fetch the citations of the top-ranked child.
	if len(st.Tree.Children) > 0 {
		child := st.Tree.Children[0]
		var cits []struct {
			ID    int64  `json:"id"`
			Title string `json:"title"`
			Year  int    `json:"year"`
		}
		get(fmt.Sprintf("%s/api/results?session=%s&node=%d", ts.URL, st.Session, child.Node), &cits)
		fmt.Printf("\nGET /api/results for %q → %d citations; first three:\n", child.Label, len(cits))
		for i, c := range cits {
			if i == 3 {
				break
			}
			fmt.Printf("  [%d] %s (%d)\n", c.ID, c.Title, c.Year)
		}
	}
}

func post(url string, body any, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func printTree(n treeNode, depth int) {
	marker := ""
	if n.Expandable {
		marker = " >>>"
	}
	fmt.Printf("%*s%s (%d)%s\n", depth*2, "", n.Label, n.Count, marker)
	for _, c := range n.Children {
		printTree(c, depth+1)
	}
}
