// The realdata example demonstrates the adoption path for actual NLM data:
// it writes a dataset out in the two official exchange formats — a MeSH
// descriptor file (ASCII MH/MN records, like d2008.bin) and a MEDLINE
// citation set (PubmedArticleSet XML, what eutils EFetch returns) — then
// imports those files with bionav.Import exactly as a user with real
// downloads would, and navigates the imported corpus.
//
// Run with:
//
//	go run ./examples/realdata
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bionav"
	"bionav/internal/corpus"
	"bionav/internal/hierarchy"
)

func main() {
	log.SetFlags(0)

	dir, err := os.MkdirTemp("", "bionav-realdata")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	meshPath := filepath.Join(dir, "mesh-descriptors.bin")
	medlinePath := filepath.Join(dir, "citations.xml")

	// Stand-in for downloading d2008.bin and an EFetch result: export a
	// synthetic dataset in the official formats.
	src := bionav.GenerateDemo(bionav.DemoConfig{Seed: 77, Concepts: 2000, Citations: 400, MeanConcepts: 25})
	writeFiles(src, meshPath, medlinePath)
	fmt.Printf("wrote %s and %s\n", meshPath, medlinePath)

	// The part a real user runs: import the two files.
	mf := mustOpen(meshPath)
	defer mf.Close()
	cf := mustOpen(medlinePath)
	defer cf.Close()
	ds, stats, err := bionav.Import(mf, cf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d of %d articles (%d unknown MeSH headings)\n",
		stats.Imported, stats.Articles, stats.UnknownDescriptors)

	engine := bionav.NewEngine(ds)
	query := engine.Suggestions(1)[0]
	nav, err := engine.Navigate(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnavigating %d results for %q over the imported MeSH:\n\n", nav.Results(), query)
	if _, err := nav.Expand(nav.Root()); err != nil {
		log.Fatal(err)
	}
	if err := nav.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func writeFiles(ds *bionav.Dataset, meshPath, medlinePath string) {
	mf, err := os.Create(meshPath)
	if err != nil {
		log.Fatal(err)
	}
	defer mf.Close()
	if err := hierarchy.WriteMeSHASCII(mf, ds.Tree); err != nil {
		log.Fatal(err)
	}

	all := make([]corpus.Citation, 0, ds.Corpus.Len())
	for i := 0; i < ds.Corpus.Len(); i++ {
		all = append(all, *ds.Corpus.At(i))
	}
	cf, err := os.Create(medlinePath)
	if err != nil {
		log.Fatal(err)
	}
	defer cf.Close()
	if err := corpus.WriteMedlineXML(cf, ds.Tree, all); err != nil {
		log.Fatal(err)
	}
}

func mustOpen(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	return f
}
