// The drugdiscovery example models the paper's "vardenafil" scenario: a
// pharmacologist surveys the literature on a drug whose results concentrate
// in a couple of research areas, and compares all three navigation
// strategies — BioNav's Heuristic-ReducedOpt, GoPubMed-style top-10
// children, and plain static navigation — on the same query, reporting the
// cost of reaching the Table I target concept under each.
//
// Run with:
//
//	go run ./examples/drugdiscovery
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"bionav"
	"bionav/internal/navigate"
	"bionav/internal/workload"
)

func main() {
	log.SetFlags(0)

	fmt.Println("synthesizing the Table I workload (small scale)…")
	cfg := workload.DefaultConfig()
	cfg.HierarchyNodes = 12000
	cfg.Background = 300
	w, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	q, ok := w.QueryByKeyword("vardenafil")
	if !ok {
		log.Fatal("no vardenafil query in workload")
	}
	nav, target, err := w.NavTree(q)
	if err != nil {
		log.Fatal(err)
	}
	stats := nav.ComputeStats()
	fmt.Printf("\n%q: %d citations over %d navigation-tree concepts (%d with duplicates)\n",
		q.Spec.Keyword, nav.DistinctTotal(), stats.Size, stats.TotalAttached)
	fmt.Printf("target concept: %q (L=%d, MEDLINE count=%d)\n\n",
		q.Spec.TargetLabel, nav.NumResults(target), q.Spec.TargetGlobal)

	policies := []bionav.Policy{
		bionav.HeuristicPolicy(10),
		bionav.TopKPolicy(10),
		bionav.StaticPolicy(),
	}
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tEXPANDs\tconcepts examined\tnavigation cost\tavg time/EXPAND")
	for _, pol := range policies {
		res, err := navigate.SimulateToTargetClocked(nav, pol, target, false, time.Now)
		if err != nil {
			log.Fatalf("%s: %v", pol.Name(), err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%v\n",
			pol.Name(), res.Cost.Expands, res.Cost.ConceptsRevealed,
			res.Cost.Navigation(), res.AvgElapsed().Round(10_000))
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// Show what the researcher actually sees after two BioNav expansions.
	engine := bionav.NewEngine(w.Dataset)
	session, err := engine.Navigate(q.Spec.Keyword)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := session.Expand(session.Root()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nBioNav view after two EXPANDs of the root:")
	if err := session.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
