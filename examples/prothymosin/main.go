// The prothymosin example replays the paper's §I running example on the
// synthesized Table I workload: the query "prothymosin" returns 313
// citations spanning several independent research areas; static navigation
// buries the interesting concepts under hundreds of siblings, while
// BioNav's cost-optimized EXPAND reaches the target concept ("Histones" in
// this reproduction) in a handful of steps.
//
// Run with:
//
//	go run ./examples/prothymosin
package main

import (
	"fmt"
	"log"
	"os"

	"bionav"
	"bionav/internal/navigate"
	"bionav/internal/workload"
)

func main() {
	log.SetFlags(0)

	fmt.Println("synthesizing the Table I workload (small scale)…")
	cfg := workload.DefaultConfig()
	cfg.HierarchyNodes = 12000
	cfg.Background = 300
	w, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	q, ok := w.QueryByKeyword("prothymosin")
	if !ok {
		log.Fatal("no prothymosin query in workload")
	}

	engine := bionav.NewEngine(w.Dataset)
	nav, err := engine.Navigate("prothymosin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%q matched %d citations (paper: 313)\n", "prothymosin", nav.Results())

	// Drive the navigation toward the Table I target concept exactly as
	// the §VIII-A oracle user does: always expand the component containing
	// the target until it surfaces.
	targetLabel := q.Spec.TargetLabel
	fmt.Printf("navigating toward the target concept %q…\n\n", targetLabel)
	for step := 1; ; step++ {
		node, ok := nav.NodeByLabel(targetLabel)
		if !ok {
			log.Fatalf("target %q not in navigation tree", targetLabel)
		}
		if nav.IsVisible(node) {
			break
		}
		// Expand the visible component whose I-set hides the target.
		expandable, _ := nav.ComponentOf(node)
		revealed, err := nav.Expand(expandable)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("EXPAND #%d on node %d revealed %d concepts\n", step, expandable, len(revealed))
	}

	fmt.Println("\ntarget revealed — the visible tree:")
	if err := nav.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	cost := nav.Cost()
	fmt.Printf("\nBioNav navigation cost: %d (%d EXPANDs + %d concepts examined)\n",
		cost.Navigation(), cost.Expands, cost.ConceptsRevealed)

	// Compare with the static baseline on the same query (Fig. 8's row).
	navTree, target, err := w.NavTree(q)
	if err != nil {
		log.Fatal(err)
	}
	static, err := navigate.SimulateToTarget(navTree, bionav.StaticPolicy(), target, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static navigation cost:  %d (%d EXPANDs + %d concepts examined)\n",
		static.Cost.Navigation(), static.Cost.Expands, static.Cost.ConceptsRevealed)
	fmt.Printf("improvement: %.0f%% (paper reports 84%% for prothymosin)\n",
		100*(1-float64(cost.Navigation())/float64(static.Cost.Navigation())))
}
