// The quickstart example shows the minimal BioNav loop: generate a demo
// dataset, run a keyword query, expand the navigation tree twice with the
// cost-optimized policy, print the Fig. 2-style tree, and list the
// citations of the most promising revealed concept.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"bionav"
)

func main() {
	log.SetFlags(0)

	// A deterministic synthetic dataset: MeSH-like hierarchy, annotated
	// citations, keyword index. Real deployments load one with bionav.Open.
	engine := bionav.NewEngine(bionav.GenerateDemo(bionav.DemoConfig{Seed: 42}))

	// Pick a common term from the corpus so the demo always has results.
	query := engine.Suggestions(1)[0]
	nav, err := engine.Navigate(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q matched %d citations\n\n", query, nav.Results())

	// Two EXPAND actions on the root: each applies the EdgeCut minimizing
	// the expected navigation cost, revealing a handful of descendant
	// concepts instead of every child.
	for i := 0; i < 2; i++ {
		revealed, err := nav.Expand(nav.Root())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("EXPAND #%d revealed %d concepts\n", i+1, len(revealed))
	}
	fmt.Println()
	if err := nav.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// SHOWRESULTS on the top-ranked revealed concept.
	rows := nav.Visible()
	if len(rows) > 1 {
		pick := rows[1]
		cits, err := nav.ShowResults(pick.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncitations under %q (%d):\n", pick.Label, len(cits))
		for i, c := range cits {
			if i == 5 {
				fmt.Printf("  … and %d more\n", len(cits)-5)
				break
			}
			fmt.Printf("  [%d] %s (%d)\n", c.ID, c.Title, c.Year)
		}
	}

	cost := nav.Cost()
	fmt.Printf("\nnavigation cost so far: %d (%d EXPANDs, %d concepts examined, %d citations listed)\n",
		cost.Total(), cost.Expands, cost.ConceptsRevealed, cost.CitationsListed)
}
