# BioNav developer targets. Stdlib-only project; gofmt, go vet, and the
# in-repo bionav-lint analyzer are the full lint suite.

GO ?= go

.PHONY: all check build test race vet fmt lint lint-fix-audit checks-test fuzz-smoke bench bench-json bench-check anytime-test faults-test chaos-test metrics-test parallel-test ingest-test load-test load-bench experiments demo clean

all: fmt vet lint test build

# Full pre-merge gate: formatting, vet, the project linter, build, tests,
# and the race detector.
check: fmt vet lint build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -s -l .); if [ -n "$$out" ]; then echo "gofmt -s needed:"; echo "$$out"; exit 1; fi

# Project-invariant static analysis: determinism, context discipline,
# logging hygiene, error wrapping, concurrency discipline (guarded
# fields, atomics, goroutine supervision), and the cross-artifact
# metric/fault-site reconciliation (docs/STATIC_ANALYSIS.md).
lint:
	$(GO) run ./cmd/bionav-lint ./...

# Snapshot the module's //lint:ignore inventory (rule → count → files)
# into LINT_BASELINE.json. The baseline is committed: a PR that grows a
# rule's suppression count shows that spend in its diff.
lint-fix-audit:
	$(GO) run ./cmd/bionav-lint -audit > LINT_BASELINE.json
	@cat LINT_BASELINE.json

# Deep-assertion build: internal/check's EdgeCut/active-tree/cost-model
# validations panic on violation in every navigation test.
checks-test:
	$(GO) test -race -tags bionav_checks ./...

# Short fuzz runs of the differential Opt-EdgeCut and PolyCut targets
# and the hierarchy serialization round-trip — CI-sized smoke, not a
# campaign.
fuzz-smoke:
	$(GO) test -run FuzzOptEdgeCut -fuzz FuzzOptEdgeCut -fuzztime 10s ./internal/core
	$(GO) test -run FuzzPolyCut -fuzz FuzzPolyCut -fuzztime 10s ./internal/core
	$(GO) test -run FuzzHierarchySerialization -fuzz FuzzHierarchySerialization -fuzztime 10s ./internal/hierarchy

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Fault-injection suite: every TestFault* arms internal/faults failpoints
# to prove the degradation paths fire (see docs/RESILIENCE.md) — including
# the journal's append/fsync/recover sites.
faults-test:
	$(GO) test -race -run '^TestFault' ./...

# Crash-recovery gate: a real journaled server subprocess is kill -9'd
# mid-EXPAND and restarted on the same journal directory; every
# acknowledged action must recover byte-identically and the in-flight one
# must not corrupt anything (docs/RESILIENCE.md §5).
chaos-test:
	BIONAV_CHAOS=1 $(GO) test -race -run '^TestChaos' -count=1 -v ./internal/server

# Observability gate: boots bionav-server against a synthetic corpus,
# scrapes /metrics, and fails if any metric in the catalog
# (docs/OBSERVABILITY.md) is missing; also races the obs primitives and
# the request middleware (see docs/OBSERVABILITY.md).
metrics-test:
	$(GO) test -race -run 'Metrics|RequestID|Trace|Probe|Stats' ./cmd/bionav-server ./internal/server
	$(GO) test -race ./internal/obs

# Concurrency gate: the parallel EXPAND pipeline raced at GOMAXPROCS=4 —
# parallel-vs-serial differential tests, the nav-cache stampede proof,
# batch EXPAND degradation, and the TTL-vs-in-flight-EXPAND race.
parallel-test:
	GOMAXPROCS=4 $(GO) test -race -run 'SolveComponents|PoolLifecycle|ExpandBatch|FaultBatch|BuildParallel|GetOrBuild|ExpandAllParallel|ConcurrentExpand|SessionExpired|TTL' ./internal/core ./internal/navtree ./internal/navigate ./internal/server

# Live-corpus gate: the incremental-ingest layer raced end to end —
# copy-on-write snapshot/index/corpus deltas, ingest-log durability and
# replay, codec strict-ascent validation, torn-tail accounting,
# last-wins upserts, epoch-keyed nav-cache invalidation, the pinned
# mid-session acceptance contract, and recovery epoch misses
# (DESIGN.md §12, docs/RESILIENCE.md §5).
ingest-test:
	$(GO) test -race -run 'Ingest|Snapshot|Epoch|CitationCodec|CitationReader|LastWin|TornTail|Delta|Apply' \
		./internal/store ./internal/index ./internal/corpus ./internal/navtree ./internal/server

# Load-harness gate: the fixed-seed open-loop smoke (nonzero successes,
# zero unexpected failures against an in-process server), the session
# trace determinism proof, the sweep's client/server cross-check, and the
# drain-shed contract pin — all raced (docs/LOADGEN.md).
load-test:
	$(GO) test -race ./internal/loadgen ./cmd/bionav-loadgen

# Record a capacity curve: self-hosted Table I workload server, three
# geometric offered-load steps, BENCH_load.json out — then validate its
# bionav-load/v1 schema.
load-bench:
	$(GO) run ./cmd/bionav-loadgen -scale small -seed 2009 -rate 4 -rate-factor 2 \
		-steps 3 -step-duration 2s -think 20ms -actions 5 -out BENCH_load.json
	$(GO) run ./cmd/bionav-benchcheck BENCH_load.json

# Machine-readable core benchmark run, for before/after comparisons.
# Includes the instrumentation-overhead benchmark from the repo root, the
# session-replay (solver-cache) benchmarks from internal/navigate, plus a
# GOMAXPROCS=4 pass of the solve-pool benchmarks so the recorded
# speedup-x / dp-speedup-x metrics reflect the parallel configuration.
# Ends by validating the appended file's JSONL integrity (bench-check).
bench-json:
	$(GO) test -json -bench=. -benchmem -run='^$$' ./internal/core . > BENCH_core.json
	$(GO) test -json -bench='BenchmarkSessionReplay' -run='^$$' ./internal/navigate >> BENCH_core.json
	GOMAXPROCS=4 $(GO) test -json -bench='BenchmarkSolveComponents' -run='^$$' ./internal/core >> BENCH_core.json
	$(GO) test -json -bench='BenchmarkIngest|BenchmarkCitationReaderGet' -run='^$$' ./internal/store >> BENCH_core.json
	$(GO) run ./cmd/bionav-benchcheck BENCH_core.json

# JSONL guard for recorded benchmark baselines: every line of every
# recorded BENCH file must parse as a standalone JSON object (and
# BENCH_load.json additionally against its capacity-curve schema), or
# before/after comparisons silently read a truncated run.
bench-check:
	$(GO) test ./cmd/bionav-benchcheck
	$(GO) run ./cmd/bionav-benchcheck BENCH_core.json BENCH_load.json

# Anytime-optimization gate: the PolyCut DP differential tests, the
# grade ladder, the w8d3 anytime-beats-static acceptance scenario, and
# the solver-cache invalidation suite — raced at a tight GOMAXPROCS so
# the cache's undo-stack bookkeeping is exercised under contention.
anytime-test:
	GOMAXPROCS=4 $(GO) test -race -run 'PolyCut|Anytime|SolverCache|PolyPolicy' ./internal/core ./internal/navigate ./internal/server

# Regenerate every table and figure of the paper's evaluation (§VIII).
experiments:
	$(GO) run ./cmd/bionav-experiments -scale full

# Build a demo database and open the web UI on :8080.
demo:
	$(GO) run ./cmd/bionav-gen -workload -out bionav-db
	$(GO) run ./cmd/bionav-server -db bionav-db

clean:
	rm -rf bionav-db test_output.txt bench_output.txt
