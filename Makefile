# BioNav developer targets. Stdlib-only project; gofmt + go vet are the
# full lint suite.

GO ?= go

.PHONY: all build test race vet fmt bench experiments demo clean

all: fmt vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation (§VIII).
experiments:
	$(GO) run ./cmd/bionav-experiments -scale full

# Build a demo database and open the web UI on :8080.
demo:
	$(GO) run ./cmd/bionav-gen -workload -out bionav-db
	$(GO) run ./cmd/bionav-server -db bionav-db

clean:
	rm -rf bionav-db test_output.txt bench_output.txt
