# BioNav developer targets. Stdlib-only project; gofmt + go vet are the
# full lint suite.

GO ?= go

.PHONY: all check build test race vet fmt bench bench-json faults-test experiments demo clean

all: fmt vet test build

# Full pre-merge gate: formatting, vet, build, tests, and the race detector.
check: fmt vet build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Fault-injection suite: every TestFault* arms internal/faults failpoints
# to prove the degradation paths fire (see docs/RESILIENCE.md).
faults-test:
	$(GO) test -race -run '^TestFault' ./...

# Machine-readable core benchmark run, for before/after comparisons.
bench-json:
	$(GO) test -json -bench=. -benchmem -run='^$$' ./internal/core > BENCH_core.json

# Regenerate every table and figure of the paper's evaluation (§VIII).
experiments:
	$(GO) run ./cmd/bionav-experiments -scale full

# Build a demo database and open the web UI on :8080.
demo:
	$(GO) run ./cmd/bionav-gen -workload -out bionav-db
	$(GO) run ./cmd/bionav-server -db bionav-db

clean:
	rm -rf bionav-db test_output.txt bench_output.txt
