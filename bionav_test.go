package bionav

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func demoEngine(t *testing.T) *Engine {
	t.Helper()
	ds := GenerateDemo(DemoConfig{Seed: 7, Concepts: 1500, Citations: 400, MeanConcepts: 25})
	return NewEngine(ds)
}

func firstQuery(t *testing.T, e *Engine) string {
	t.Helper()
	terms := e.Suggestions(5)
	if len(terms) == 0 {
		t.Fatal("no suggestions")
	}
	return terms[0]
}

func TestGenerateDemoDeterministic(t *testing.T) {
	a := GenerateDemo(DemoConfig{Seed: 9, Concepts: 800, Citations: 100, MeanConcepts: 20})
	b := GenerateDemo(DemoConfig{Seed: 9, Concepts: 800, Citations: 100, MeanConcepts: 20})
	if a.Tree.Len() != b.Tree.Len() || a.Corpus.Len() != b.Corpus.Len() {
		t.Fatal("demo generation not deterministic")
	}
	if a.Corpus.At(0).Title != b.Corpus.At(0).Title {
		t.Fatal("demo corpora differ")
	}
}

func TestGenerateDemoDefaults(t *testing.T) {
	ds := GenerateDemo(DemoConfig{})
	if ds.Tree.Len() != 6000 || ds.Corpus.Len() != 2000 {
		t.Fatalf("defaults: %d concepts, %d citations", ds.Tree.Len(), ds.Corpus.Len())
	}
}

func TestEngineSearchAndNavigate(t *testing.T) {
	e := demoEngine(t)
	q := firstQuery(t, e)
	ids := e.Search(q)
	if len(ids) == 0 {
		t.Fatalf("no results for %q", q)
	}
	if _, ok := e.Citation(ids[0]); !ok {
		t.Fatal("result citation unresolvable")
	}

	nav, err := e.Navigate(q)
	if err != nil {
		t.Fatal(err)
	}
	if nav.Results() != len(ids) {
		t.Fatalf("Results = %d, want %d", nav.Results(), len(ids))
	}
	if nav.Keywords() != q {
		t.Fatalf("Keywords = %q", nav.Keywords())
	}

	revealed, err := nav.Expand(nav.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(revealed) == 0 {
		t.Fatal("expand revealed nothing")
	}
	if got := nav.Cost(); got.Expands != 1 || got.ConceptsRevealed != len(revealed) {
		t.Fatalf("cost = %+v", got)
	}
	for _, r := range revealed {
		if !nav.IsVisible(r) {
			t.Fatalf("revealed node %d not visible", r)
		}
	}

	cits, err := nav.ShowResults(revealed[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(cits) == 0 {
		t.Fatal("no citations listed")
	}

	if err := nav.Backtrack(); err != nil {
		t.Fatal(err)
	}
	if nav.IsVisible(revealed[0]) {
		t.Fatal("backtrack did not hide revealed node")
	}
}

func TestNavigateNoMatch(t *testing.T) {
	e := demoEngine(t)
	if _, err := e.Navigate("zzznotaword"); err == nil {
		t.Fatal("Navigate succeeded on empty result")
	}
}

func TestNavigateResultsExplicitSet(t *testing.T) {
	e := demoEngine(t)
	ids := e.Dataset().Corpus.IDs()[:25]
	nav, err := e.NavigateResults("custom", ids)
	if err != nil {
		t.Fatal(err)
	}
	if nav.Results() != 25 {
		t.Fatalf("Results = %d", nav.Results())
	}
	if _, err := e.NavigateResults("ghost", []CitationID{424242}); err == nil {
		t.Fatal("nonexistent IDs accepted")
	}
}

func TestVisibleAndRender(t *testing.T) {
	e := demoEngine(t)
	nav, err := e.Navigate(firstQuery(t, e))
	if err != nil {
		t.Fatal(err)
	}
	if got := nav.Visible()[0].Count; got != nav.Results() {
		t.Fatalf("initial root count = %d, want %d", got, nav.Results())
	}
	if _, err := nav.Expand(nav.Root()); err != nil {
		t.Fatal(err)
	}
	rows := nav.Visible()
	if len(rows) < 2 || rows[0].Depth != 0 || rows[1].Depth != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	// After the cut the root's component shrinks, so its count may drop but
	// never exceed the result total (Definition 5).
	if rows[0].Count <= 0 || rows[0].Count > nav.Results() {
		t.Fatalf("root count after expand = %d", rows[0].Count)
	}
	var buf bytes.Buffer
	if err := nav.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, rows[1].Label) || !strings.Contains(out, ">>>") {
		t.Fatalf("render = %q", out)
	}
}

func TestNodeByLabel(t *testing.T) {
	e := demoEngine(t)
	nav, err := e.Navigate(firstQuery(t, e))
	if err != nil {
		t.Fatal(err)
	}
	rows := nav.Visible()
	id, ok := nav.NodeByLabel(rows[0].Label)
	if !ok || id != rows[0].ID {
		t.Fatalf("NodeByLabel(root) = %d, %v", id, ok)
	}
	if _, ok := nav.NodeByLabel("No Such Concept"); ok {
		t.Fatal("found nonexistent label")
	}
}

func TestEngineSaveOpenRoundTrip(t *testing.T) {
	e := demoEngine(t)
	dir := filepath.Join(t.TempDir(), "db")
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := firstQuery(t, e)
	a, b := e.Search(q), e2.Search(q)
	if len(a) != len(b) {
		t.Fatalf("search differs after reload: %d vs %d", len(a), len(b))
	}
	nav, err := e2.Navigate(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nav.Expand(nav.Root()); err != nil {
		t.Fatal(err)
	}
}

func TestPolicies(t *testing.T) {
	e := demoEngine(t)
	q := firstQuery(t, e)
	for _, pol := range []Policy{HeuristicPolicy(0), StaticPolicy(), TopKPolicy(5)} {
		e.SetPolicy(pol)
		nav, err := e.Navigate(q)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if _, err := nav.Expand(nav.Root()); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}
}

func TestSuggestionsOrdered(t *testing.T) {
	e := demoEngine(t)
	sug := e.Suggestions(20)
	if len(sug) != 20 {
		t.Fatalf("len = %d", len(sug))
	}
	prev := -1
	for i, s := range sug {
		df := e.Dataset().Index.DocFreq(s)
		if prev != -1 && df > prev {
			t.Fatalf("suggestion %d (%q) out of order", i, s)
		}
		prev = df
	}
}

func TestDefaultCostModelExposed(t *testing.T) {
	m := DefaultCostModel()
	if m.Thi != 50 || m.Tlo != 10 {
		t.Fatalf("model = %+v", m)
	}
}

func TestCachedHeuristicPolicyNavigates(t *testing.T) {
	e := demoEngine(t)
	e.SetPolicy(CachedHeuristicPolicy(0))
	nav, err := e.Navigate(firstQuery(t, e))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := nav.Expand(nav.Root()); err != nil {
			break
		}
	}
	if nav.Cost().Expands == 0 {
		t.Fatal("no expansions happened")
	}
}

func TestNavigationExportReplay(t *testing.T) {
	e := demoEngine(t)
	q := firstQuery(t, e)
	orig, err := e.Navigate(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Expand(orig.Root()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Export(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := e.ReplayNavigation(q, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Cost() != orig.Cost() {
		t.Fatalf("cost %+v != %+v", restored.Cost(), orig.Cost())
	}
	a, b := orig.Visible(), restored.Visible()
	if len(a) != len(b) {
		t.Fatalf("visible rows differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if _, err := e.ReplayNavigation("zzznotaword", &buf); err == nil {
		t.Fatal("replay on empty result accepted")
	}
}
