// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VIII). Each Benchmark* corresponds to one table/figure (see DESIGN.md's
// experiment index); custom metrics report the paper-comparable quantities
// (navigation cost, improvement %, EXPAND counts) alongside wall time.
//
// Run with:
//
//	go test -bench=. -benchmem
package bionav_test

import (
	"context"
	"io"
	"sync"
	"testing"

	"bionav/internal/core"
	"bionav/internal/experiments"
	"bionav/internal/navigate"
	"bionav/internal/navtree"
	"bionav/internal/obs"
	"bionav/internal/workload"
)

// benchWorkload synthesizes the Table I workload once per process at a
// benchmark-friendly scale (full result sizes, reduced hierarchy).
var benchWorkload = sync.OnceValues(func() (*workload.Workload, error) {
	cfg := workload.DefaultConfig()
	cfg.HierarchyNodes = 8000
	cfg.Background = 200
	for i := range cfg.Specs {
		cfg.Specs[i].MeanConcepts = 40
	}
	return workload.Generate(cfg)
})

// benchNavs builds (once) every query's navigation tree and target.
var benchNavs = sync.OnceValues(func() (map[string]navPair, error) {
	w, err := benchWorkload()
	if err != nil {
		return nil, err
	}
	out := make(map[string]navPair, len(w.Queries))
	for i := range w.Queries {
		q := &w.Queries[i]
		nav, target, err := w.NavTree(q)
		if err != nil {
			return nil, err
		}
		out[q.Spec.Keyword] = navPair{nav: nav, target: target}
	}
	return out, nil
})

type navPair struct {
	nav    *navtree.Tree
	target navtree.NodeID
}

func mustNavs(b *testing.B) map[string]navPair {
	b.Helper()
	navs, err := benchNavs()
	if err != nil {
		b.Fatal(err)
	}
	return navs
}

// runAll simulates the TOPDOWN oracle over every workload query and
// returns total navigation cost and EXPAND count.
func runAll(b *testing.B, policy core.Policy) (cost, expands int) {
	b.Helper()
	for _, np := range mustNavs(b) {
		res, err := navigate.SimulateToTarget(np.nav, policy, np.target, false)
		if err != nil {
			b.Fatal(err)
		}
		cost += res.Cost.Navigation()
		expands += res.Cost.Expands
	}
	return cost, expands
}

// BenchmarkTableIWorkload regenerates Table I: workload synthesis plus the
// navigation-tree statistics of every query.
func BenchmarkTableIWorkload(b *testing.B) {
	w, err := benchWorkload()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	totalSize := 0
	for i := 0; i < b.N; i++ {
		totalSize = 0
		for j := range w.Queries {
			nav, _, err := w.NavTree(&w.Queries[j])
			if err != nil {
				b.Fatal(err)
			}
			totalSize += nav.ComputeStats().Size
		}
	}
	b.ReportMetric(float64(totalSize)/float64(len(w.Queries)), "navtree-nodes/query")
}

// BenchmarkFig8NavigationCost regenerates Fig. 8: BioNav vs static
// navigation cost over the whole workload.
func BenchmarkFig8NavigationCost(b *testing.B) {
	mustNavs(b) // exclude setup
	b.ResetTimer()
	var bio, static int
	for i := 0; i < b.N; i++ {
		bio, _ = runAll(b, core.NewHeuristicReducedOpt())
		static, _ = runAll(b, core.StaticAll{})
	}
	b.ReportMetric(float64(bio), "bionav-cost")
	b.ReportMetric(float64(static), "static-cost")
	b.ReportMetric(100*(1-float64(bio)/float64(static)), "improvement-%")
}

// BenchmarkFig9ExpandActions regenerates Fig. 9: EXPAND counts per method.
func BenchmarkFig9ExpandActions(b *testing.B) {
	mustNavs(b)
	b.ResetTimer()
	var bioX, staticX int
	for i := 0; i < b.N; i++ {
		_, bioX = runAll(b, core.NewHeuristicReducedOpt())
		_, staticX = runAll(b, core.StaticAll{})
	}
	b.ReportMetric(float64(bioX), "bionav-expands")
	b.ReportMetric(float64(staticX), "static-expands")
}

// BenchmarkFig10ExpandTime regenerates Fig. 10: it measures the pure
// Heuristic-ReducedOpt decision time per EXPAND across the workload (the
// b.N loop times exactly the per-expansion algorithm work).
func BenchmarkFig10ExpandTime(b *testing.B) {
	navs := mustNavs(b)
	pol := core.NewHeuristicReducedOpt()
	b.ResetTimer()
	expands := 0
	for i := 0; i < b.N; i++ {
		expands = 0
		for _, np := range navs {
			res, err := navigate.SimulateToTarget(np.nav, pol, np.target, false)
			if err != nil {
				b.Fatal(err)
			}
			expands += len(res.Steps)
		}
	}
	b.ReportMetric(float64(expands), "expands/op")
}

// BenchmarkFig11ProthymosinPerExpand regenerates Fig. 11: the per-EXPAND
// sequence of the "prothymosin" navigation.
func BenchmarkFig11ProthymosinPerExpand(b *testing.B) {
	navs := mustNavs(b)
	np, ok := navs["prothymosin"]
	if !ok {
		b.Fatal("no prothymosin query")
	}
	pol := core.NewHeuristicReducedOpt()
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		res, err := navigate.SimulateToTarget(np.nav, pol, np.target, false)
		if err != nil {
			b.Fatal(err)
		}
		steps = len(res.Steps)
	}
	b.ReportMetric(float64(steps), "expands")
}

// BenchmarkAblationReducedTreeBudget sweeps k (Ablation A).
func BenchmarkAblationReducedTreeBudget(b *testing.B) {
	for _, k := range []int{4, 8, 10, 12} {
		b.Run(benchName("k", k), func(b *testing.B) {
			mustNavs(b)
			pol := &core.HeuristicReducedOpt{K: k, Model: core.DefaultCostModel()}
			b.ResetTimer()
			var cost int
			for i := 0; i < b.N; i++ {
				cost, _ = runAll(b, pol)
			}
			b.ReportMetric(float64(cost), "nav-cost")
		})
	}
}

// BenchmarkAblationExpandCost sweeps the EXPAND cost constant (Ablation B).
func BenchmarkAblationExpandCost(b *testing.B) {
	for _, k := range []int{1, 4, 8} {
		b.Run(benchName("K", k), func(b *testing.B) {
			mustNavs(b)
			model := core.DefaultCostModel()
			model.ExpandCost = float64(k)
			pol := &core.HeuristicReducedOpt{K: 10, Model: model}
			b.ResetTimer()
			var cost, expands int
			for i := 0; i < b.N; i++ {
				cost, expands = runAll(b, pol)
			}
			b.ReportMetric(float64(cost), "nav-cost")
			b.ReportMetric(float64(expands), "expands")
		})
	}
}

// BenchmarkAblationModelVariants compares the probability-model variants
// and baselines (Ablation C).
func BenchmarkAblationModelVariants(b *testing.B) {
	entOff := core.DefaultCostModel()
	entOff.UseEntropy = false
	discounted := core.DefaultCostModel()
	discounted.DiscountUpper = true
	variants := []struct {
		name   string
		policy core.Policy
	}{
		{"default", core.NewHeuristicReducedOpt()},
		{"entropy-off", &core.HeuristicReducedOpt{K: 10, Model: entOff}},
		{"discounted-upper", &core.HeuristicReducedOpt{K: 10, Model: discounted}},
		{"static-top10", core.StaticTopK{K: 10}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			mustNavs(b)
			b.ResetTimer()
			var cost int
			for i := 0; i < b.N; i++ {
				cost, _ = runAll(b, v.policy)
			}
			b.ReportMetric(float64(cost), "nav-cost")
		})
	}
}

// BenchmarkCachedVsPlainHeuristic compares full-navigation decision work
// with and without the §VI-B plan cache.
func BenchmarkCachedVsPlainHeuristic(b *testing.B) {
	navs := mustNavs(b)
	np := navs["prothymosin"]
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := navigate.SimulateToTarget(np.nav, core.NewHeuristicReducedOpt(), np.target, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := navigate.SimulateToTarget(np.nav, core.NewCachedHeuristic(), np.target, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExperimentHarness times the full §VIII regeneration pipeline
// (everything cmd/bionav-experiments does at small scale).
func BenchmarkExperimentHarness(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.HierarchyNodes = 8000
	cfg.Background = 100
	for i := range cfg.Specs {
		cfg.Specs[i].MeanConcepts = 40
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.NewRunner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.All(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v < 10 {
		return prefix + "=" + digits[v:v+1]
	}
	return prefix + "=" + digits[v/10:v/10+1] + digits[v%10:v%10+1]
}

// BenchmarkExpandInstrumented measures the observability cost of the
// EXPAND hot path: the same full navigation once with an untraced
// context (every span call is a nil-receiver no-op) and once under an
// active root span recording the complete span tree. The traced vs
// untraced delta is the instrumentation overhead docs/OBSERVABILITY.md
// bounds at <5%.
func BenchmarkExpandInstrumented(b *testing.B) {
	navs := mustNavs(b)
	np, ok := navs["prothymosin"]
	if !ok {
		b.Fatal("no prothymosin query")
	}
	run := func(b *testing.B, traced bool) {
		for i := 0; i < b.N; i++ {
			ctx := context.Background()
			var root *obs.Span
			if traced {
				root = obs.NewSpan("bench")
				ctx = obs.ContextWithSpan(ctx, root)
			}
			s := navigate.NewSession(np.nav, core.NewHeuristicReducedOpt())
			for steps := 0; !s.Active().IsVisible(np.target); steps++ {
				if steps > np.nav.Len() {
					b.Fatal("target not reached")
				}
				if _, err := s.ExpandContext(ctx, s.Active().ComponentOf(np.target)); err != nil {
					b.Fatal(err)
				}
			}
			root.End()
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}

// BenchmarkBooleanQuery measures the boolean retrieval path on the
// workload corpus.
func BenchmarkBooleanQuery(b *testing.B) {
	w, err := benchWorkload()
	if err != nil {
		b.Fatal(err)
	}
	ix := w.Dataset.Index
	q := "prothymosin OR (vardenafil AND context) NOT follistatin"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.SearchBoolean(q); err != nil {
			b.Fatal(err)
		}
	}
}
