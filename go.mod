module bionav

go 1.22
